"""Prometheus-compatible metrics for the synthesis service.

Stdlib-only, single-process, asyncio-friendly (every mutation happens on
the event loop thread or under the GIL on plain dict ops, so no locking
is needed for correctness of the rendered snapshot).

Three instrument shapes cover everything ``/metrics`` exposes:

* **counters** — monotonically increasing totals, optionally labelled
  (``jobs_total{status="done"}``);
* **gauges** — instantaneous values read from a callable at render time
  (queue depth, in-flight jobs), so the scrape always reflects *now*;
* **summaries** — ``_sum``/``_count`` pairs for observed distributions
  (batch sizes, per-stage latencies); enough for rates and averages
  without histogram buckets.

The :class:`~repro.perf.PerfCounters` totals accumulated by the batcher
(scheduler cache hit rates, sweep fallbacks, …) are folded into the same
exposition as ``repro_perf_counter_total{name="..."}`` /
``repro_perf_timer_seconds_total{name="..."}`` series, which is how the
``sweep.fallback.<reason>`` attribution surfaces to operators.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.perf import PerfCounters

#: Prefix shared by every service-level series.
NAMESPACE = "repro_serve"

LabelSet = Tuple[Tuple[str, str], ...]


def _labels(labels: Mapping[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def relabel_exposition(text: str, **labels: str) -> str:
    """Inject constant labels into every sample of an exposition.

    The shard router scrapes each worker shard's ``/metrics`` and
    re-emits the union with a ``shard="shard-<i>"`` label (its own
    series carry ``shard="router"``), so one scrape of the router shows
    the whole fleet with per-shard attribution.  ``# HELP``/``# TYPE``
    comment lines pass through untouched; sample lines get the new
    labels merged in front of any existing ones.
    """
    if not labels:
        return text
    injected = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    lines = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            lines.append(line)
            continue
        name_part, _sep, value_part = line.rpartition(" ")
        if not name_part:  # pragma: no cover - malformed sample line
            lines.append(line)
            continue
        if name_part.endswith("}"):
            brace = name_part.index("{")
            existing = name_part[brace + 1:-1]
            merged = f"{injected},{existing}" if existing else injected
            name_part = f"{name_part[:brace]}{{{merged}}}"
        else:
            name_part = f"{name_part}{{{injected}}}"
        lines.append(f"{name_part} {value_part}")
    return "\n".join(lines) + ("\n" if text.endswith("\n") else "")


def merge_expositions(parts) -> str:
    """Concatenate expositions, keeping one HELP/TYPE header per metric.

    Prometheus rejects duplicate ``# TYPE`` lines for the same metric
    name; when the router merges N shard scrapes the headers repeat, so
    the first occurrence wins and later duplicates are dropped (sample
    lines always pass through).
    """
    seen = set()
    lines = []
    for part in parts:
        for line in part.splitlines():
            if line.startswith(("# HELP ", "# TYPE ")):
                kind, _, rest = line.partition(" ")[2].partition(" ")
                key = (line.split(" ", 1)[0], kind)
                if key in seen:
                    continue
                seen.add(key)
            lines.append(line)
    return "\n".join(lines) + "\n"


class Metrics:
    """The service metrics registry (one per :class:`~repro.serve.app.ServeApp`)."""

    def __init__(self, namespace: str = NAMESPACE) -> None:
        self.namespace = namespace
        self._counters: Dict[str, Dict[LabelSet, float]] = {}
        self._summaries: Dict[str, Dict[LabelSet, Tuple[float, int]]] = {}
        self._gauges: Dict[str, Dict[LabelSet, Callable[[], float]]] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` line to metric ``name``."""
        self._help[name] = help_text

    def incr(
        self, name: str, amount: float = 1, **labels: str
    ) -> None:
        """Add ``amount`` to counter ``name`` for the given label set."""
        series = self._counters.setdefault(name, {})
        key = _labels(labels)
        series[key] = series.get(key, 0) + amount

    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of a counter (0 when never touched)."""
        return self._counters.get(name, {}).get(_labels(labels), 0)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Record one observation into summary ``name`` (sum + count)."""
        series = self._summaries.setdefault(name, {})
        key = _labels(labels)
        total, count = series.get(key, (0.0, 0))
        series[key] = (total + float(value), count + 1)

    def summary_value(self, name: str, **labels: str) -> Tuple[float, int]:
        """The ``(sum, count)`` pair of a summary (zeros when untouched)."""
        return self._summaries.get(name, {}).get(_labels(labels), (0.0, 0))

    def gauge(
        self, name: str, read: Callable[[], float], **labels: str
    ) -> None:
        """Register gauge ``name``; ``read()`` is called at render time.

        Labels give one gauge per label set under the same metric name
        (e.g. ``shard_respawn_backoff_seconds{target="shard-1"}``);
        re-registering a name+label set replaces its reader.
        """
        self._gauges.setdefault(name, {})[_labels(labels)] = read

    def remove_gauge(self, name: str, **labels: str) -> None:
        """Drop the gauge registered for ``name`` + label set, if any.

        Needed when the labelled entity goes away (a drained shard must
        stop appearing in the scrape); unknown names are a no-op.
        """
        series = self._gauges.get(name)
        if series is None:
            return
        series.pop(_labels(labels), None)
        if not series:
            del self._gauges[name]

    # ------------------------------------------------------------------
    def render(self, perf: Optional[PerfCounters] = None) -> str:
        """The Prometheus text exposition (version 0.0.4)."""
        lines = []

        def emit_header(full_name: str, metric_type: str, base: str) -> None:
            help_text = self._help.get(base)
            if help_text:
                lines.append(f"# HELP {full_name} {help_text}")
            lines.append(f"# TYPE {full_name} {metric_type}")

        for name in sorted(self._counters):
            full = f"{self.namespace}_{name}_total"
            emit_header(full, "counter", name)
            for key in sorted(self._counters[name]):
                value = self._counters[name][key]
                lines.append(f"{full}{_render_labels(key)} {_format(value)}")

        for name in sorted(self._gauges):
            full = f"{self.namespace}_{name}"
            emit_header(full, "gauge", name)
            for key in sorted(self._gauges[name]):
                read = self._gauges[name][key]
                lines.append(
                    f"{full}{_render_labels(key)} {_format(read())}"
                )

        for name in sorted(self._summaries):
            full = f"{self.namespace}_{name}"
            emit_header(full, "summary", name)
            for key in sorted(self._summaries[name]):
                total, count = self._summaries[name][key]
                rendered = _render_labels(key)
                lines.append(f"{full}_sum{rendered} {_format(total)}")
                lines.append(f"{full}_count{rendered} {_format(count)}")

        if perf is not None:
            if perf.counters:
                lines.append(
                    "# HELP repro_perf_counter_total Scheduler/sweep "
                    "PerfCounters totals aggregated across all jobs."
                )
                lines.append("# TYPE repro_perf_counter_total counter")
                for name in sorted(perf.counters):
                    lines.append(
                        f'repro_perf_counter_total{{name="{_escape(name)}"}} '
                        f"{_format(perf.counters[name])}"
                    )
            if perf.timers:
                lines.append(
                    "# HELP repro_perf_timer_seconds_total Accumulated "
                    "PerfCounters phase timers."
                )
                lines.append("# TYPE repro_perf_timer_seconds_total counter")
                for name in sorted(perf.timers):
                    lines.append(
                        f'repro_perf_timer_seconds_total{{name="{_escape(name)}"}} '
                        f"{_format(perf.timers[name])}"
                    )
        return "\n".join(lines) + "\n"
