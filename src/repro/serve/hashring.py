"""Consistent-hash routing for the sharded synthesis service.

The router front end (:mod:`repro.serve.router`) spreads jobs over N
worker shards by hashing the job's canonical DFG fingerprint
(:func:`repro.dfg.fingerprint.dfg_fingerprint`) onto a *consistent hash
ring*.  Consistent hashing gives the two properties plain
``hash(key) % N`` lacks:

* **stability under resizing** — growing a fleet from N to N+1 shards
  moves only ~1/(N+1) of the key space; every key that moves, moves to
  the *new* shard.  Shard-local warm state (result caches, worker pools
  with pre-built libraries, journal locality) survives a scale-out
  instead of being reshuffled wholesale;
* **deterministic, process-independent placement** — the ring is built
  from sha256 digests of shard names, never from python's seeded
  ``hash()``, so the router, the tests and a replay after restart all
  agree on every key's owner.

Each shard is placed on the ring at ``replicas`` *virtual points*
(vnodes), which evens out the arc lengths: with the default 128 vnodes
the per-shard key share stays within ~±15 % of ideal on realistic key
populations (a property test pins this).  A key is owned by the first
vnode clockwise from the key's own hash; :meth:`HashRing.ordered` yields
the full preference order (each shard once, in ring order), which is
what failover walks when the owner is unhealthy.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

#: Virtual nodes per shard; more vnodes = smoother balance, larger ring.
DEFAULT_REPLICAS = 128


def _digest(text: str) -> int:
    """Position of ``text`` on the ring (stable across processes)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent hash ring over named shards.

    >>> ring = HashRing(["shard-0", "shard-1", "shard-2"])
    >>> owner = ring.node_for("a3f1...")        # doctest: +SKIP
    >>> ring.ordered("a3f1...")[0] == owner     # doctest: +SKIP
    True
    """

    def __init__(
        self,
        nodes: Iterable[str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: List[str] = []
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """The shard names on the ring, in insertion order."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Place ``node`` on the ring at ``replicas`` virtual points."""
        if not node:
            raise ValueError("shard name must be non-empty")
        if node in self._nodes:
            raise ValueError(f"shard {node!r} already on the ring")
        self._nodes.append(node)
        for replica in range(self.replicas):
            point = _digest(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Take ``node`` off the ring (its keys move to their successors)."""
        if node not in self._nodes:
            raise ValueError(f"shard {node!r} not on the ring")
        self._nodes.remove(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _owner in keep]
        self._owners = [owner for _point, owner in keep]

    # ------------------------------------------------------------------
    def grown(self, node: str) -> "HashRing":
        """A new ring with ``node`` added (this ring is untouched).

        The online-reshard primitive: the router builds the *pending*
        ring first, computes the handoff set against it with
        :func:`moved_keys`, pushes the warm cache entries, and only then
        flips its live ring to the grown one.
        """
        return HashRing(self._nodes + [node], replicas=self.replicas)

    def shrunk(self, node: str) -> "HashRing":
        """A new ring with ``node`` removed (this ring is untouched)."""
        if node not in self._nodes:
            raise ValueError(f"shard {node!r} not on the ring")
        return HashRing(
            [n for n in self._nodes if n != node], replicas=self.replicas
        )

    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The shard that owns ``key`` (first vnode clockwise)."""
        if not self._nodes:
            raise ValueError("hash ring is empty")
        index = bisect.bisect(self._points, _digest(key)) % len(self._points)
        return self._owners[index]

    def ordered(self, key: str) -> List[str]:
        """Every shard once, in ring order starting at ``key``'s owner.

        The failover preference list: the router forwards to the first
        *healthy* entry, so when the owner is down the key consistently
        lands on the same fallback shard.
        """
        if not self._nodes:
            raise ValueError("hash ring is empty")
        start = bisect.bisect(self._points, _digest(key)) % len(self._points)
        seen: Dict[str, None] = {}
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen[owner] = None
                if len(seen) == len(self._nodes):
                    break
        return list(seen)

    # ------------------------------------------------------------------
    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Keys-per-shard histogram (balance checks and metrics)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts


def moved_keys(
    before: "HashRing", after: "HashRing", keys: Iterable[str]
) -> Dict[str, Tuple[str, str]]:
    """Keys whose owner changes between two rings.

    This *is* the handoff set of a resize: a cached result must be
    pushed from its old owner to its new owner for exactly the keys
    returned here, and for no others.  Maps each relocated key to its
    ``(old_owner, new_owner)`` pair; growing a ring by one shard maps
    every relocated key to the new shard, shrinking maps every key the
    removed shard owned to its ring successor (a property test pins
    both).
    """
    out: Dict[str, Tuple[str, str]] = {}
    for key in keys:
        old_owner = before.node_for(key)
        new_owner = after.node_for(key)
        if old_owner != new_owner:
            out[key] = (old_owner, new_owner)
    return out
