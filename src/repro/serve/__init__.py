"""repro.serve — the batching, cache-fronted synthesis service.

A stdlib-only JSON-over-HTTP front end to the MFS/MFSA schedulers:
content-addressed result cache, bounded job queue with backpressure,
micro-batching dispatch through :class:`~repro.sweep.SweepExecutor`,
Prometheus-compatible metrics and graceful drain.  ``--shards N`` scales
it to a fleet: a :class:`ShardRouter` front end consistent-hashes jobs
over N worker-shard subprocesses behind the same HTTP API.  See
``docs/SERVICE.md`` for the operator's guide and ``docs/ARCHITECTURE.md``
for how the pieces fit.
"""

from repro.serve.app import ServeApp, ServeConfig, ServeHandle
from repro.serve.cache import ResultCache
from repro.serve.hashring import HashRing
from repro.serve.client import (
    Backpressure,
    Client,
    JobFailedError,
    ServiceError,
)
from repro.serve.jobs import (
    JobSpecError,
    cache_key,
    execute_spec,
    normalize_spec,
    response_text,
)
from repro.serve.metrics import Metrics
from repro.serve.queue import Job, JobFailed, JobQueue, JobTimeout, QueueFull
from repro.serve.router import RouterConfig, RouterHandle, ShardRouter

__all__ = [
    "ServeApp",
    "ServeConfig",
    "ServeHandle",
    "ShardRouter",
    "RouterConfig",
    "RouterHandle",
    "HashRing",
    "ResultCache",
    "Client",
    "ServiceError",
    "Backpressure",
    "JobFailedError",
    "JobSpecError",
    "cache_key",
    "normalize_spec",
    "execute_spec",
    "response_text",
    "Metrics",
    "Job",
    "JobQueue",
    "JobFailed",
    "JobTimeout",
    "QueueFull",
]
