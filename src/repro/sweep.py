"""Parallel sweep execution for design-space and table regeneration.

Every harness in this repository has the same shape: a list of independent
work items (time budgets, Table-1 cells, Table-2 rows, ablation grid
points) mapped through a pure synthesis function.  :class:`SweepExecutor`
fans such maps out over a :mod:`concurrent.futures` process pool while
keeping the *contract* of the serial loop:

* **deterministic ordering** — results come back in item order, always
  (``ProcessPoolExecutor.map`` preserves input order; the serial path is
  a plain loop);
* **identical values** — workers run the exact same function on the exact
  same picklable payloads, so a process-pool sweep is byte-for-byte
  interchangeable with a serial one (locked down by the test suite);
* **graceful degradation** — on a single-core box, in restricted sandboxes
  where forking fails, or for payloads that refuse to pickle, the executor
  falls back to the serial loop rather than erroring out — and *says so*:
  every fallback records its reason in the attached
  :class:`~repro.perf.PerfCounters` (``sweep.serial_fallbacks`` plus a
  per-reason ``sweep.fallback.<reason>`` counter) and in
  :attr:`SweepExecutor.last_fallback_reason`, so a degraded deployment is
  visible in ``--perf`` output and the ``repro.serve`` ``/metrics``
  endpoint instead of silently running at 1/N throughput.

Workers must be module-level functions and payloads picklable; the
callers in :mod:`repro.explore` and :mod:`repro.bench` define dedicated
``_*_worker`` functions for exactly this reason.

Long-lived callers (the :mod:`repro.serve` micro-batcher) can pass
``keep_pool=True`` to reuse one warm process pool across many ``map``
calls instead of paying pool start-up per batch; :meth:`SweepExecutor.close`
(or use as a context manager) releases it.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.perf import PerfCounters

T = TypeVar("T")
R = TypeVar("R")

#: Recognised backend names.
BACKENDS = ("auto", "process", "serial")


def default_workers() -> int:
    """Worker count used when the caller does not pin one.

    ``os.cpu_count()`` reports the machine's cores even when the process
    is confined to fewer (containers, cgroups, ``taskset``); the CPU
    affinity mask is the number of cores this process may actually run
    on, so prefer it where the platform exposes it.
    """
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(os.cpu_count() or 1, 1)


class SweepExecutor:
    """Order-preserving map over independent sweep items.

    Parameters
    ----------
    backend:
        ``"serial"`` — plain in-process loop; ``"process"`` — always use a
        :class:`ProcessPoolExecutor`; ``"auto"`` — use processes when the
        machine has more than one CPU and there is more than one item,
        else serial.
    workers:
        Process count for the pool (default: ``os.cpu_count()``).
    perf:
        Optional :class:`~repro.perf.PerfCounters`; receives a
        ``sweep.tasks`` count and a ``sweep.map`` timer, and is the merge
        target for worker-side snapshots (see :func:`merge_worker_perf`).
    keep_pool:
        Keep one warm :class:`ProcessPoolExecutor` alive across ``map``
        calls (sized ``workers``) instead of starting a fresh pool per
        call.  For many small batches — the ``repro.serve`` dispatch
        pattern — this removes pool start-up from every batch.  Call
        :meth:`close` (or use the executor as a context manager) when
        done; a broken pool is discarded and lazily rebuilt.
    """

    #: Fallback reason codes (the ``sweep.fallback.<reason>`` counters).
    FALLBACK_REASONS = (
        "payload-unpicklable",
        "pool-start",
        "worker-crash",
        "result-unpicklable",
    )

    def __init__(
        self,
        backend: str = "auto",
        workers: Optional[int] = None,
        perf: Optional[PerfCounters] = None,
        keep_pool: bool = False,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = workers or default_workers()
        self.perf = perf
        self.keep_pool = keep_pool
        #: Reason code of the most recent serial fallback (``None`` when
        #: every map so far ran where it was asked to run).
        self.last_fallback_reason: Optional[str] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _use_processes(self, n_items: int) -> bool:
        if self.backend == "serial":
            return False
        if self.backend == "process":
            return True
        return self.workers > 1 and n_items > 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item; results in item order.

        The process path requires ``fn`` to be a module-level function and
        the items/results to pickle; when they do not (checked up front
        for the items, so no half-finished pool is left behind), or when
        the pool itself cannot start, the serial loop runs instead.
        """
        items = list(items)
        if self.perf is None:
            return self._map(fn, items)
        with self.perf.timer("sweep.map"):
            return self._map(fn, items)

    def _map(self, fn: Callable[[T], R], items: List[T]) -> List[R]:
        if self.perf is not None:
            self.perf.incr("sweep.tasks", len(items))
        if self._use_processes(len(items)):
            try:
                pickle.dumps((fn, items))
            except Exception:
                # Unpicklable payload: run serial below.
                self._note_fallback("payload-unpicklable", pool_failed=False)
            else:
                try:
                    if self.keep_pool:
                        return list(self._warm_pool().map(fn, items))
                    with ProcessPoolExecutor(
                        max_workers=min(self.workers, len(items))
                    ) as pool:
                        return list(pool.map(fn, items))
                except (OSError, PermissionError):
                    # Pool could not start (sandbox, no /dev/shm, …).
                    self._note_fallback("pool-start")
                except BrokenExecutor:
                    # A worker died mid-map (OOM-killed, segfaulted, …);
                    # the workers are pure functions, so rerunning
                    # everything serially is safe.
                    self._note_fallback("worker-crash")
                except pickle.PicklingError:
                    # A *result* refused to pickle on the way back — the
                    # up-front dumps() above only vets fn and the items.
                    self._note_fallback("result-unpicklable")
        return [fn(item) for item in items]

    def _note_fallback(self, reason: str, pool_failed: bool = True) -> None:
        """Record why a map degraded to the serial loop.

        ``sweep.pool_failures`` keeps its historical meaning (a pool that
        started — or tried to start — and failed); ``sweep.serial_fallbacks``
        counts every degradation including payloads that never reached a
        pool, with ``sweep.fallback.<reason>`` attributing the cause.
        """
        self.last_fallback_reason = reason
        if pool_failed:
            self._discard_pool()
        if self.perf is not None:
            if pool_failed:
                self.perf.incr("sweep.pool_failures")
            self.perf.incr("sweep.serial_fallbacks")
            self.perf.incr(f"sweep.fallback.{reason}")

    # -- persistent pool ------------------------------------------------
    def _warm_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def close(self) -> None:
        """Shut down the warm pool (no-op without ``keep_pool``)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def sweep_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    backend: str = "auto",
    workers: Optional[int] = None,
    perf: Optional[PerfCounters] = None,
) -> List[R]:
    """One-call convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(backend=backend, workers=workers, perf=perf).map(
        fn, items
    )


def merge_worker_perf(perf: Optional[PerfCounters], snapshots) -> None:
    """Fold worker-side :meth:`PerfCounters.as_dict` snapshots into ``perf``.

    Workers cannot mutate the caller's counter object across process
    boundaries, so parallel workers return ``(result, snapshot)`` pairs
    and the caller merges the snapshots after the map completes.
    """
    if perf is None:
        return
    for snapshot in snapshots:
        if snapshot:
            perf.merge(snapshot)


def merge_worker_traces(trace, tagged_snapshots) -> None:
    """Fold worker-side trace snapshots into one ``TraceRecorder``.

    Mirrors :func:`merge_worker_perf` for the :mod:`repro.trace` layer:
    workers record into their own recorder and ship back
    :meth:`~repro.trace.recorder.TraceRecorder.snapshot` (a picklable
    event list); the caller merges them here, in item order, each stream
    tagged with its ``src`` label so replay can split the combined file
    back into per-item runs.  ``tagged_snapshots`` is an iterable of
    ``(source_label, events | None)`` pairs; ``trace=None`` is a no-op.
    """
    if trace is None:
        return
    for source, events in tagged_snapshots:
        if events:
            trace.merge(events, source)
