"""Parallel sweep execution for design-space and table regeneration.

Every harness in this repository has the same shape: a list of independent
work items (time budgets, Table-1 cells, Table-2 rows, ablation grid
points) mapped through a pure synthesis function.  :class:`SweepExecutor`
fans such maps out over a :mod:`concurrent.futures` process pool while
keeping the *contract* of the serial loop:

* **deterministic ordering** — results come back in item order, always
  (``ProcessPoolExecutor.map`` preserves input order; the serial path is
  a plain loop);
* **identical values** — workers run the exact same function on the exact
  same picklable payloads, so a process-pool sweep is byte-for-byte
  interchangeable with a serial one (locked down by the test suite);
* **graceful degradation** — on a single-core box, in restricted sandboxes
  where forking fails, or for payloads that refuse to pickle, the executor
  falls back to the serial loop rather than erroring out — and *says so*:
  every fallback records its reason in the attached
  :class:`~repro.perf.PerfCounters` (``sweep.serial_fallbacks`` plus a
  per-reason ``sweep.fallback.<reason>`` counter) and in
  :attr:`SweepExecutor.last_fallback_reason`, so a degraded deployment is
  visible in ``--perf`` output and the ``repro.serve`` ``/metrics``
  endpoint instead of silently running at 1/N throughput;
* **self-healing** — the process path submits *per-item* futures, so one
  crashed worker no longer forces the whole map back to the serial loop.
  A broken pool is rebuilt and the unfinished items are retried with a
  bounded per-item budget (``item_retries``); an item that keeps killing
  workers is *quarantined* — it alone degrades to an in-process run
  (``sweep.quarantined`` / ``sweep.quarantine.<reason>`` counters,
  :attr:`SweepExecutor.last_quarantine_reason`) while every healthy item
  still runs in the pool.  The :mod:`repro.resilience` fault site
  ``"sweep.submit"`` fires per submission, so seeded chaos tests can
  perturb exactly this machinery.

* **warm workers** — pool processes start through an initializer that
  pre-imports the scheduler stack (:data:`WARM_IMPORTS`) and installs the
  executor's shared ``context`` exactly once per worker; worker functions
  memoise heavyweight per-process builds (cell library, timing model)
  through :func:`worker_cached`, keyed by fingerprint.  Items stay
  *compact* — indices and small parameter tuples — instead of re-pickling
  the design and library into every payload, and ``chunksize`` groups
  many small items into one submission when the per-item work is tiny.

Workers must be module-level functions and payloads picklable; the
callers in :mod:`repro.explore` and :mod:`repro.bench` define dedicated
``_*_worker`` functions for exactly this reason.

Callers that need item-level progress (checkpointing, progress bars)
pass ``on_item`` to :meth:`SweepExecutor.map`: it is invoked in the
parent process as each item's result lands.  ``on_item`` must be
idempotent per item — a whole-map serial fallback after a partial pool
round replays every item.

Long-lived callers (the :mod:`repro.serve` micro-batcher) can pass
``keep_pool=True`` to reuse one warm process pool across many ``map``
calls instead of paying pool start-up per batch; :meth:`SweepExecutor.close`
(or use as a context manager) releases it.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.perf import PerfCounters
from repro.resilience.faults import InjectedFault, fault_point

T = TypeVar("T")
R = TypeVar("R")

#: Recognised backend names.
BACKENDS = ("auto", "process", "serial")

#: Modules every pool worker imports at start-up (the warm-worker
#: initializer).  Importing the scheduler stack once per *worker* instead
#: of lazily on the first item moves the import cost out of the first
#: map's critical path and off the per-item clock entirely.
WARM_IMPORTS = (
    "repro.core.kernel",
    "repro.core.mfs",
    "repro.core.mfsa",
    "repro.dfg.analysis",
    "repro.io.jsonio",
    "repro.library.ncr",
)

# ---------------------------------------------------------------------------
# Per-process worker state.  These globals live in *each* pool worker (and
# in the parent, which runs the serial / quarantine paths): the initializer
# fills them once per worker process, `worker_cached` memoises heavyweight
# builds (cell libraries, timing models) across the items a worker serves,
# and `worker_context` hands out the map-wide shared payload that would
# otherwise be pickled into every item.
# ---------------------------------------------------------------------------
_WORKER_INITS = 0
_WORKER_CACHE: Dict[Any, Any] = {}
_WORKER_CACHE_BUILDS = 0
_WORKER_CONTEXT: Optional[Tuple[str, Any]] = None


def _init_worker(preload: Sequence[str], context_blob) -> None:
    """Pool initializer: pre-import modules, install the shared context."""
    global _WORKER_INITS, _WORKER_CONTEXT
    _WORKER_INITS += 1
    for module in preload:
        try:
            importlib.import_module(module)
        except ImportError:  # pragma: no cover - trimmed installs
            pass
    if context_blob is not None:
        fingerprint, payload = context_blob
        _WORKER_CONTEXT = (fingerprint, pickle.loads(payload))


def worker_init_count() -> int:
    """How many times this process ran the pool initializer.

    ``0`` in the parent / serial path; ``1`` in a healthy warm worker no
    matter how many maps it has served (the warm-pool regression tests
    assert exactly this).
    """
    return _WORKER_INITS


def worker_cache_builds() -> int:
    """How many :func:`worker_cached` misses this process has paid."""
    return _WORKER_CACHE_BUILDS


def worker_cached(key, build: Callable[[], Any]) -> Any:
    """Fetch-or-build a per-worker cached object.

    ``key`` is a stable fingerprint (e.g. ``("library",)`` or
    ``("ops", mul_latency)``); ``build`` runs at most once per key per
    worker process.  Cached objects are shared across every item and
    every ``map`` a worker serves, so they must be treated as immutable.
    """
    global _WORKER_CACHE_BUILDS
    value = _WORKER_CACHE.get(key)
    if value is None:
        _WORKER_CACHE_BUILDS += 1
        value = _WORKER_CACHE[key] = build()
    return value


def worker_context():
    """The shared context installed for the current map (or ``None``).

    Workers of a :class:`SweepExecutor` constructed with ``context=...``
    receive the context once at pool start-up via the initializer; the
    serial, fallback and quarantine paths see the identical object
    installed parent-side.  Items can therefore stay compact — indices
    and small parameter tuples — instead of re-pickling the design,
    timing model and library into every single payload.
    """
    if _WORKER_CONTEXT is None:
        return None
    return _WORKER_CONTEXT[1]


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> List[R]:
    """Worker-side body of a chunked submission."""
    return [fn(item) for item in chunk]


def default_workers() -> int:
    """Worker count used when the caller does not pin one.

    ``os.cpu_count()`` reports the machine's cores even when the process
    is confined to fewer (containers, cgroups, ``taskset``); the CPU
    affinity mask is the number of cores this process may actually run
    on, so prefer it where the platform exposes it.
    """
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(os.cpu_count() or 1, 1)


class SweepExecutor:
    """Order-preserving map over independent sweep items.

    Parameters
    ----------
    backend:
        ``"serial"`` — plain in-process loop; ``"process"`` — always use a
        :class:`ProcessPoolExecutor`; ``"auto"`` — use processes when the
        machine has more than one CPU and there is more than one item,
        else serial.
    workers:
        Process count for the pool (default: ``os.cpu_count()``).
    perf:
        Optional :class:`~repro.perf.PerfCounters`; receives a
        ``sweep.tasks`` count and a ``sweep.map`` timer, and is the merge
        target for worker-side snapshots (see :func:`merge_worker_perf`).
    keep_pool:
        Keep one warm :class:`ProcessPoolExecutor` alive across ``map``
        calls (sized ``workers``) instead of starting a fresh pool per
        call.  For many small batches — the ``repro.serve`` dispatch
        pattern — this removes pool start-up from every batch.  Call
        :meth:`close` (or use the executor as a context manager) when
        done; a broken pool is discarded and lazily rebuilt.
    """

    #: Whole-map fallback reason codes (``sweep.fallback.<reason>``):
    #: degradations where the pool never ran any item.
    FALLBACK_REASONS = (
        "payload-unpicklable",
        "pool-start",
    )

    #: Per-item quarantine reason codes (``sweep.quarantine.<reason>``):
    #: one poison item degraded to the in-process loop, the rest of the
    #: map kept its pool.
    QUARANTINE_REASONS = (
        "worker-crash",
        "result-unpicklable",
        "injected-fault",
    )

    def __init__(
        self,
        backend: str = "auto",
        workers: Optional[int] = None,
        perf: Optional[PerfCounters] = None,
        keep_pool: bool = False,
        item_retries: int = 2,
        warm_imports: Sequence[str] = WARM_IMPORTS,
        context: Any = None,
        chunksize: int = 1,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if item_retries < 0:
            raise ValueError(f"item_retries must be >= 0, got {item_retries}")
        if chunksize < 0:
            raise ValueError(f"chunksize must be >= 0, got {chunksize}")
        self.backend = backend
        self.workers = workers or default_workers()
        self.perf = perf
        self.keep_pool = keep_pool
        self.item_retries = item_retries
        self.warm_imports = tuple(warm_imports)
        #: ``chunksize=1`` submits per item (full healing granularity);
        #: ``N > 1`` groups N items per submission (amortises the
        #: submit/pickle round-trip for many small items — crash healing
        #: then re-runs the chunk's items individually); ``0`` picks a
        #: chunk size from the item and worker counts automatically.
        self.chunksize = chunksize
        #: Reason code of the most recent whole-map serial fallback
        #: (``None`` when every map so far ran where it was asked to run).
        self.last_fallback_reason: Optional[str] = None
        #: Reason code of the most recent poison-item quarantine.
        self.last_quarantine_reason: Optional[str] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._context = context
        self._context_blob: Optional[Tuple[str, bytes]] = None
        if context is not None:
            payload = pickle.dumps(context)
            fingerprint = hashlib.sha256(payload).hexdigest()
            self._context_blob = (fingerprint, payload)
            self._install_context()

    def _install_context(self) -> None:
        """Make the shared context visible to in-process item runs.

        The serial, fallback and quarantine paths run items in this
        process, so the parent installs the same context the pool
        initializer gives the workers.
        """
        if self._context_blob is not None:
            global _WORKER_CONTEXT
            _WORKER_CONTEXT = (self._context_blob[0], self._context)

    # ------------------------------------------------------------------
    def _effective_chunksize(self, n_items: int) -> int:
        """Resolve ``chunksize=0`` (auto) against the map's item count.

        Auto aims at ~4 chunks per worker: large enough to amortise the
        per-submission pickle round-trip, small enough to keep the pool
        load-balanced and crash healing reasonably fine-grained.
        """
        if self.chunksize > 0:
            return self.chunksize
        return max(1, -(-n_items // (self.workers * 4)))

    def _use_processes(self, n_items: int) -> bool:
        if self.backend == "serial":
            return False
        if self.backend == "process":
            return True
        return self.workers > 1 and n_items > 1

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_item: Optional[Callable[[int, R], None]] = None,
    ) -> List[R]:
        """Apply ``fn`` to every item; results in item order.

        The process path requires ``fn`` to be a module-level function and
        the items/results to pickle; when they do not (checked up front
        for the items, so no half-finished pool is left behind), or when
        the pool itself cannot start, the serial loop runs instead.
        Worker crashes mid-map heal at item granularity (see the module
        docstring); only the crashing item leaves the pool.

        ``on_item(index, result)`` is called in the parent as each item
        completes — the checkpoint hook.  It must be idempotent per item.
        """
        items = list(items)
        self._install_context()
        if self.perf is None:
            return self._map(fn, items, on_item)
        with self.perf.timer("sweep.map"):
            return self._map(fn, items, on_item)

    def _map(
        self,
        fn: Callable[[T], R],
        items: List[T],
        on_item: Optional[Callable[[int, R], None]] = None,
    ) -> List[R]:
        if self.perf is not None:
            self.perf.incr("sweep.tasks", len(items))
        if self._use_processes(len(items)):
            try:
                pickle.dumps((fn, items))
            except Exception:
                # Unpicklable payload: run serial below.
                self._note_fallback("payload-unpicklable", pool_failed=False)
            else:
                try:
                    return self._map_pool(fn, items, on_item)
                except (OSError, PermissionError):
                    # Pool could not start (sandbox, no /dev/shm, …).
                    self._note_fallback("pool-start")
        results = []
        for index, item in enumerate(items):
            value = fn(item)
            results.append(value)
            if on_item is not None:
                on_item(index, value)
        return results

    # -- self-healing process path --------------------------------------
    def _map_pool(
        self,
        fn: Callable[[T], R],
        items: List[T],
        on_item: Optional[Callable[[int, R], None]],
    ) -> List[R]:
        """Per-item futures through the pool, healing crashes item-wise.

        Fast path: one submission round over a shared pool, results
        harvested in item order.  When a worker dies every pending future
        fails with ``BrokenExecutor`` and the *culprit is unknown*, so
        the healing path re-runs each unfinished item in its own
        submission against a rebuilt pool — an innocent item simply
        completes (it stays on the pool), while a poison item breaks the
        pool again, exhausts its ``item_retries`` budget and is
        quarantined to the in-process loop.  Raises ``OSError`` /
        ``PermissionError`` to the caller only when the pool cannot
        (re)start at all.
        """
        results: List[Optional[R]] = [None] * len(items)

        def finish(index: int, value: R) -> None:
            results[index] = value
            if on_item is not None:
                on_item(index, value)

        chunk = self._effective_chunksize(len(items))
        unfinished: List[Tuple[int, str]] = []
        pool = self._warm_pool()
        pending: List[Tuple[int, int, object]] = []
        broken = False
        for start in range(0, len(items), chunk):
            batch = items[start : start + chunk]
            if broken:
                unfinished.extend(
                    (start + offset, "worker-crash")
                    for offset in range(len(batch))
                )
                continue
            try:
                fault_point("sweep.submit")
                if len(batch) == 1:
                    future = pool.submit(fn, batch[0])
                else:
                    future = pool.submit(_run_chunk, fn, batch)
                pending.append((start, len(batch), future))
            except InjectedFault:
                for offset in range(len(batch)):
                    self._note_item_retry(start + offset)
                    unfinished.append((start + offset, "injected-fault"))
            except BrokenExecutor:
                unfinished.extend(
                    (start + offset, "worker-crash")
                    for offset in range(len(batch))
                )
                broken = True
        for start, count, future in pending:
            try:
                value = future.result()
            except BrokenExecutor:
                unfinished.extend(
                    (start + offset, "worker-crash") for offset in range(count)
                )
                broken = True
            except pickle.PicklingError:
                if count == 1:
                    # Only this item's result refused the trip back.
                    finish(
                        start,
                        self._quarantine(
                            fn, items[start], "result-unpicklable"
                        ),
                    )
                else:
                    # The culprit inside the chunk is unknown: solo
                    # retries below let the innocent items complete and
                    # quarantine only the poison one.
                    unfinished.extend(
                        (start + offset, "result-unpicklable")
                        for offset in range(count)
                    )
            else:
                if count == 1:
                    finish(start, value)
                else:
                    for offset, item_value in enumerate(value):
                        finish(start + offset, item_value)
        if broken:
            self._note_pool_break()
        for index, reason in sorted(unfinished):
            finish(index, self._heal_item(fn, items[index], index, reason))
        if not self.keep_pool:
            self.close()
        return results  # type: ignore[return-value]

    def _heal_item(
        self, fn: Callable[[T], R], item: T, index: int, reason: str
    ) -> R:
        """Retry one unfinished item alone on the pool, else quarantine.

        A solo submission attributes failure precisely: if the pool
        breaks now, *this* item is the poison.
        """
        for _attempt in range(self.item_retries):
            try:
                fault_point("sweep.submit")
                future = self._warm_pool().submit(fn, item)
                return future.result()
            except InjectedFault:
                reason = "injected-fault"
                self._note_item_retry(index)
            except BrokenExecutor:
                reason = "worker-crash"
                self._note_pool_break()
                self._note_item_retry(index)
            except pickle.PicklingError:
                reason = "result-unpicklable"
                break
        return self._quarantine(fn, item, reason)

    def _quarantine(self, fn: Callable[[T], R], item: T, reason: str) -> R:
        """Run one poison item in-process; the rest of the map keeps its
        pool.  Exceptions ``fn`` raises here propagate, exactly as on the
        serial backend."""
        self.last_quarantine_reason = reason
        if self.perf is not None:
            self.perf.incr("sweep.quarantined")
            self.perf.incr(f"sweep.quarantine.{reason}")
        return fn(item)

    def _note_item_retry(self, _index: int) -> None:
        if self.perf is not None:
            self.perf.incr("sweep.item_retries")

    def _note_pool_break(self) -> None:
        """A pool broke mid-map (worker OOM-killed, segfaulted, …)."""
        self._discard_pool()
        if self.perf is not None:
            self.perf.incr("sweep.pool_failures")

    def _note_fallback(self, reason: str, pool_failed: bool = True) -> None:
        """Record why a whole map degraded to the serial loop.

        ``sweep.pool_failures`` keeps its historical meaning (a pool that
        started — or tried to start — and failed); ``sweep.serial_fallbacks``
        counts every whole-map degradation including payloads that never
        reached a pool, with ``sweep.fallback.<reason>`` attributing the
        cause.  Item-level degradations are counted separately as
        quarantines (see :meth:`_quarantine`).
        """
        self.last_fallback_reason = reason
        if pool_failed:
            self._discard_pool()
        if self.perf is not None:
            if pool_failed:
                self.perf.incr("sweep.pool_failures")
            self.perf.incr("sweep.serial_fallbacks")
            self.perf.incr(f"sweep.fallback.{reason}")

    # -- persistent pool ------------------------------------------------
    def _warm_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.warm_imports, self._context_blob),
            )
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            pool, self._pool = self._pool, None
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort cleanup
                pass

    def close(self) -> None:
        """Shut down the warm pool (no-op without ``keep_pool``)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=True)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def sweep_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    backend: str = "auto",
    workers: Optional[int] = None,
    perf: Optional[PerfCounters] = None,
) -> List[R]:
    """One-call convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(backend=backend, workers=workers, perf=perf).map(
        fn, items
    )


def merge_worker_perf(perf: Optional[PerfCounters], snapshots) -> None:
    """Fold worker-side :meth:`PerfCounters.as_dict` snapshots into ``perf``.

    Workers cannot mutate the caller's counter object across process
    boundaries, so parallel workers return ``(result, snapshot)`` pairs
    and the caller merges the snapshots after the map completes.
    """
    if perf is None:
        return
    for snapshot in snapshots:
        if snapshot:
            perf.merge(snapshot)


def merge_worker_traces(trace, tagged_snapshots) -> None:
    """Fold worker-side trace snapshots into one ``TraceRecorder``.

    Mirrors :func:`merge_worker_perf` for the :mod:`repro.trace` layer:
    workers record into their own recorder and ship back
    :meth:`~repro.trace.recorder.TraceRecorder.snapshot` (a picklable
    event list); the caller merges them here, in item order, each stream
    tagged with its ``src`` label so replay can split the combined file
    back into per-item runs.  ``tagged_snapshots`` is an iterable of
    ``(source_label, events | None)`` pairs; ``trace=None`` is a no-op.
    """
    if trace is None:
        return
    for source, events in tagged_snapshots:
        if events:
            trace.merge(events, source)
