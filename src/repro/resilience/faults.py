"""Deterministic, seedable fault injection for chaos testing.

The paper frames MFS/MFSA as a *stability* problem: the scheduler must
converge to equilibrium even when perturbed (local rescheduling when a
move frame empties).  This module applies the same discipline to the
production layers around the schedulers: named failure points
(*fault sites*) are compiled into the serve/sweep hot paths, and a
:class:`FaultPlan` decides — deterministically, from a seed — which
calls to those sites fail.  Two runs with the same plan see the *same*
failure sequence, so every chaos test reproduces byte for byte.

A fault site is one line::

    from repro.resilience import fault_point
    fault_point("serve.cache.put")

With no plan armed this is a single global ``None`` check — effectively
free, which is what lets the sites live in hot paths permanently instead
of the ad-hoc monkeypatching the test suite used to do.  Arming a plan
(:func:`arm` / :meth:`FaultPlan.armed`) makes the matching sites raise
:class:`InjectedFault` according to their trigger rules:

* ``n=<k>`` — fire on exactly the *k*-th call (1-based) to the site;
* ``every=<k>`` — fire on every *k*-th call;
* ``p=<q>`` — fire each call with probability *q*, drawn from the plan's
  own seeded :class:`random.Random` stream;
* ``times=<k>`` — cap the number of firings (combines with the above).

Plans parse from a compact CLI spelling (the ``--faults`` flag)::

    FaultPlan.parse("serve.cache.put:n=2,sweep.submit:p=0.25:times=3", seed=7)

Every firing is appended to :attr:`FaultPlan.log` as ``(site,
call_index)``, which is how tests assert that two seeded runs replayed
the identical failure sequence.

Known sites are listed in :data:`FAULT_SITES`; :func:`fault_point`
accepts unknown names too (callers may define private sites), but
:meth:`FaultPlan.validate` warns about rules that can never fire.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Fault sites compiled into the production layers.  Keep this list in
#: sync with docs/ROBUSTNESS.md (the docs test greps it).
FAULT_SITES = (
    "serve.admit",          # ServeApp.submit, after spec validation
    "serve.dispatch",       # MicroBatcher, before a batch executes
    "serve.cache.put",      # ServeApp._resolve, before caching a result
    "serve.journal.write",  # JobJournal.append, before the write
    "sweep.submit",         # SweepExecutor, per-item pool submission
    "scheduler.run",        # execute_spec, before the scheduler runs
    "router.forward",       # ShardRouter, before proxying to a shard
    "router.handoff",       # ShardRouter, before pushing a reshard handoff batch
    "shard.replica.put",    # ShardRouter, before a replica cache write
)


class InjectedFault(RuntimeError):
    """A failure raised by an armed :class:`FaultPlan`.

    Carries the site name and the 1-based call index at which it fired,
    so handlers (and test assertions) can identify the exact injection.
    """

    def __init__(self, site: str, call_index: int) -> None:
        super().__init__(f"injected fault at {site} (call {call_index})")
        self.site = site
        self.call_index = call_index

    def __reduce__(self):
        # Rebuild from (site, call_index) so the fault survives the
        # pickling a process-pool boundary applies to worker exceptions.
        return (type(self), (self.site, self.call_index))


@dataclass
class FaultRule:
    """Trigger rule for one fault site."""

    site: str
    nth: Optional[int] = None
    every: Optional[int] = None
    probability: float = 0.0
    times: Optional[int] = None
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.nth is not None and self.nth < 1:
            raise ValueError(f"n must be >= 1, got {self.nth}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"p must be within [0, 1], got {self.probability}"
            )
        if (
            self.nth is None
            and self.every is None
            and self.probability == 0.0
        ):
            raise ValueError(
                f"rule for {self.site!r} can never fire "
                "(give one of n=, every=, p=)"
            )

    def should_fire(self, call_index: int, rng: random.Random) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.nth is not None and call_index == self.nth:
            return True
        if self.every is not None and call_index % self.every == 0:
            return True
        if self.probability > 0.0 and rng.random() < self.probability:
            return True
        return False


class FaultPlan:
    """A seeded set of :class:`FaultRule` triggers over named sites.

    The plan owns its random stream (``random.Random(seed)``), its
    per-site call counters and its firing log; two plans built from the
    same spec and seed therefore make identical decisions call for call.
    Thread-safe: serve fault sites are hit from the event-loop thread
    and the batcher's worker thread concurrently.
    """

    def __init__(
        self, rules: Iterable[FaultRule] = (), seed: int = 0
    ) -> None:
        self.seed = seed
        self.rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ValueError(f"duplicate rule for site {rule.site!r}")
            self.rules[rule.site] = rule
        self.calls: Dict[str, int] = {}
        #: Every firing, in order: ``(site, call_index)`` pairs.
        self.log: List[Tuple[str, int]] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the ``--faults`` CLI spelling.

        ``spec`` is a comma-separated list of rules; each rule is a site
        name followed by colon-separated ``key=value`` triggers::

            serve.cache.put:n=2,sweep.submit:p=0.25:times=3
        """
        rules = []
        for chunk in filter(None, (c.strip() for c in spec.split(","))):
            site, _sep, tail = chunk.partition(":")
            if not tail:
                raise ValueError(
                    f"rule {chunk!r} has no trigger (expected site:key=value)"
                )
            kwargs: Dict[str, object] = {}
            for clause in tail.split(":"):
                key, sep, value = clause.partition("=")
                if not sep:
                    raise ValueError(f"malformed trigger clause {clause!r}")
                key = key.strip()
                try:
                    if key == "n":
                        kwargs["nth"] = int(value)
                    elif key == "every":
                        kwargs["every"] = int(value)
                    elif key == "p":
                        kwargs["probability"] = float(value)
                    elif key == "times":
                        kwargs["times"] = int(value)
                    else:
                        raise ValueError(
                            f"unknown trigger {key!r} "
                            "(expected n=, every=, p=, times=)"
                        )
                except ValueError:
                    raise
                except Exception as error:  # pragma: no cover - defensive
                    raise ValueError(f"bad trigger {clause!r}: {error}")
            rules.append(FaultRule(site=site.strip(), **kwargs))
        return cls(rules, seed=seed)

    def validate(self) -> List[str]:
        """Warnings for rules naming sites no production code declares."""
        return [
            f"rule for unknown fault site {site!r}"
            for site in self.rules
            if site not in FAULT_SITES
        ]

    # ------------------------------------------------------------------
    def hit(self, site: str) -> None:
        """One call through fault site ``site``; raises when it fires."""
        with self._lock:
            index = self.calls.get(site, 0) + 1
            self.calls[site] = index
            rule = self.rules.get(site)
            if rule is None or not rule.should_fire(index, self._rng):
                return
            rule.fired += 1
            self.log.append((site, index))
        raise InjectedFault(site, index)

    def fired(self, site: Optional[str] = None) -> int:
        """Total firings (of one site, or across the whole plan)."""
        if site is None:
            return len(self.log)
        return sum(1 for logged_site, _index in self.log if logged_site == site)

    def reset(self) -> None:
        """Rewind counters, log and the random stream to the initial state."""
        self.calls.clear()
        self.log.clear()
        self._rng = random.Random(self.seed)
        for rule in self.rules.values():
            rule.fired = 0

    # ------------------------------------------------------------------
    def armed(self) -> "_Armed":
        """Context manager arming this plan process-wide."""
        return _Armed(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sites = ",".join(sorted(self.rules))
        return f"FaultPlan(seed={self.seed}, sites=[{sites}])"


# ---------------------------------------------------------------------------
# The process-wide armed plan.  One slot, guarded by a lock for the
# arm/disarm transitions; the fast path reads one module global.
# ---------------------------------------------------------------------------
_active: Optional[FaultPlan] = None
_arm_lock = threading.Lock()


def arm(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the process-wide fault plan; returns the old one.

    ``arm(None)`` disarms.  Prefer :meth:`FaultPlan.armed` in tests — it
    restores the previous plan on exit even when the body raises.
    """
    global _active
    with _arm_lock:
        previous, _active = _active, plan
    return previous


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan (``None`` when fault injection is off)."""
    return _active


def fault_point(site: str) -> None:
    """Declare a named failure point; raises :class:`InjectedFault` when
    the armed plan's rule for ``site`` decides this call fails."""
    plan = _active
    if plan is not None:
        plan.hit(site)


class _Armed:
    def __init__(self, plan: FaultPlan) -> None:
        self._plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        self._previous = arm(self._plan)
        return self._plan

    def __exit__(self, *exc_info) -> None:
        arm(self._previous)
