"""Checkpoint/resume for long design-space sweeps.

The multi-hour explorations behind Table 1/2 reproduction (and the
feedback-guided iterative flows in the related work) cannot afford to
restart from item zero after an interruption.  :class:`SweepCheckpoint`
makes a sweep resumable at item granularity: each completed item appends
one fsync'd JSONL record keyed by a caller-chosen string (a budget, a
table cell), and a restarted sweep skips every key already present.

The first line of the file is a header carrying the caller's *meta*
fingerprint — the sweep configuration (design fingerprint, style,
library digest, …).  Opening a checkpoint with different meta discards
the stale file and starts fresh, so a checkpoint can never leak results
across configurations.  Values must round-trip through JSON; the caller
owns (de)serialisation of richer shapes.

Torn trailing lines (the crash signature) are dropped on load, exactly
as in :mod:`repro.resilience.journal`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

#: Checkpoint format version (embedded in the header line).
CHECKPOINT_VERSION = 1


class SweepCheckpoint:
    """Append-only item-level checkpoint for one sweep configuration."""

    def __init__(
        self,
        path: str,
        meta: Optional[Mapping[str, Any]] = None,
        fsync: bool = True,
    ) -> None:
        self.path = str(path)
        self.meta = dict(meta or {})
        self.fsync = fsync
        self._handle = None
        self._done: Dict[str, Any] = {}
        #: Whether a stale checkpoint (meta mismatch / corruption) was dropped.
        self.discarded_stale = False
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = [line for line in handle.read().split("\n") if line]
        except FileNotFoundError:
            return
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if (
            not isinstance(header, dict)
            or header.get("checkpoint") != CHECKPOINT_VERSION
            or header.get("meta") != self.meta
        ):
            self.discarded_stale = True
            os.unlink(self.path)
            return
        for index, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines):
                    break  # torn tail from a crash mid-write: drop it
                self.discarded_stale = True
                self._done.clear()
                os.unlink(self.path)
                return
            key = record.get("key")
            if isinstance(key, str):
                self._done[key] = record.get("value")

    def _open(self):
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            fresh = not os.path.exists(self.path)
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh or os.path.getsize(self.path) == 0:
                self._handle.write(
                    json.dumps(
                        {"checkpoint": CHECKPOINT_VERSION, "meta": self.meta},
                        sort_keys=True,
                    )
                    + "\n"
                )
                self._flush()
        return self._handle

    def _flush(self) -> None:
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._done)

    def __contains__(self, key: str) -> bool:
        return key in self._done

    def get(self, key: str, default: Any = None) -> Any:
        return self._done.get(key, default)

    def record(self, key: str, value: Any) -> None:
        """Durably record one completed item (idempotent per key)."""
        if key in self._done:
            return
        handle = self._open()
        handle.write(
            json.dumps({"key": key, "value": value}, sort_keys=True) + "\n"
        )
        self._flush()
        self._done[key] = value

    def close(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def resume_map(
    executor,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    ckpt: Optional[SweepCheckpoint],
    key_fn: Callable[[Any], str],
    encode: Callable[[Any], Any] = lambda value: value,
    decode: Callable[[Any], Any] = lambda value: value,
) -> List[Any]:
    """A :meth:`SweepExecutor.map` that skips checkpointed items.

    Items whose ``key_fn`` is already in ``ckpt`` are restored via
    ``decode`` without re-running; the rest go through ``executor`` and
    each completion is durably recorded (``encode`` must produce a
    JSON-serialisable value).  Results come back in ``items`` order,
    restored and fresh interleaved.  ``ckpt=None`` degrades to a plain
    map.
    """
    results: List[Any] = [None] * len(items)
    pending: List[Any] = []
    pending_indices: List[int] = []
    for index, item in enumerate(items):
        key = key_fn(item) if ckpt is not None else None
        if ckpt is not None and key in ckpt:
            results[index] = decode(ckpt.get(key))
        else:
            pending.append(item)
            pending_indices.append(index)
    on_item = None
    if ckpt is not None:
        def on_item(pending_index: int, value: Any) -> None:
            ckpt.record(key_fn(pending[pending_index]), encode(value))
    fresh = executor.map(fn, pending, on_item=on_item)
    for index, value in zip(pending_indices, fresh):
        results[index] = value
    return results
