"""Write-ahead job journal: crash-safe durability for ``repro.serve``.

An append-only JSONL file under the server's ``--state-dir``.  Every
*admitted* job writes an ``admit`` record (spec + id + cache key) before
the server acknowledges the submission, and a ``complete`` record (final
status + canonical response text) when it resolves — both fsync'd, so a
``kill -9`` loses at most a partially written trailing line, never an
acknowledged job.  On restart the server replays the journal: completed
jobs repopulate the result cache and the job table (``GET
/v1/jobs/<id>`` survives process death), and admitted-but-unfinished
jobs are re-executed under their original ids.  Because synthesis is
deterministic, the replayed results are byte-identical to an
uninterrupted run.

Record shapes (one JSON object per line)::

    {"event": "admit",    "id": "...", "key": "...", "spec": {...}, "seq": 1}
    {"event": "complete", "id": "...", "status": "done", "ok": true,
     "text": "...", "seq": 2}

Torn writes are expected under ``kill -9``: :func:`load_records`
silently drops a final line that does not parse, and
:func:`audit_journal` (the :mod:`repro.check` integration) flags any
*interior* corruption, duplicate terminal states or completes without a
matching admit.

Compaction (:meth:`JobJournal.compact`) runs on graceful drain: finished
jobs collapse to one ``complete`` record (the admit is dropped — its
only purpose was to survive a crash *before* completion), pending admits
are kept verbatim, and the rewrite goes through a temp file + ``rename``
so a crash mid-compaction leaves the old journal intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.check.report import CheckReport
from repro.resilience.faults import fault_point

#: Journal format version (embedded in every record).
JOURNAL_VERSION = 1

#: Terminal job statuses a ``complete`` record may carry.
TERMINAL_STATUSES = ("done", "failed", "timeout", "cancelled")


@dataclass
class JournalEntry:
    """Replay state of one journaled job."""

    job_id: str
    key: Optional[str] = None
    spec: Optional[Dict[str, Any]] = None
    timeout_s: Optional[float] = None
    status: Optional[str] = None
    ok: Optional[bool] = None
    text: Optional[str] = None
    error: Optional[Dict[str, str]] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES


@dataclass
class JournalState:
    """The outcome of replaying a journal."""

    #: Jobs with a terminal ``complete`` record, in journal order.
    completed: List[JournalEntry] = field(default_factory=list)
    #: Jobs admitted but never completed (the crash window), in order.
    pending: List[JournalEntry] = field(default_factory=list)
    #: Records read (excluding a torn trailing line).
    records: int = 0
    #: Whether the final line was torn (dropped) by a crash.
    torn_tail: bool = False


def load_records(path: str) -> "tuple[List[Dict[str, Any]], bool]":
    """All parseable records, plus whether a torn trailing line was dropped.

    A torn *final* line is the expected signature of ``kill -9`` landing
    mid-write and is silently dropped; an unparseable line anywhere else
    is real corruption and raises ``ValueError``.
    """
    records: List[Dict[str, Any]] = []
    torn = False
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
    except FileNotFoundError:
        return [], False
    # split("\n") on a well-formed journal yields a trailing "" element.
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                torn = True
                break
            raise ValueError(
                f"{path}: corrupt journal record at line {index + 1}"
            )
        records.append(record)
    return records, torn


class JobJournal:
    """Append-only, fsync'd JSONL journal of job admissions/completions."""

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = str(path)
        self.fsync = fsync
        self._seq = 0
        self._handle = None
        self.write_errors = 0

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def _open(self):
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: Mapping[str, Any]) -> None:
        """Durably append one record (write + flush + fsync).

        Raises whatever the filesystem raises (and
        :class:`~repro.resilience.faults.InjectedFault` under an armed
        plan); callers decide whether durability errors are fatal.
        """
        fault_point("serve.journal.write")
        self._seq += 1
        payload = dict(record)
        payload["seq"] = self._seq
        payload["v"] = JOURNAL_VERSION
        handle = self._open()
        handle.write(json.dumps(payload, sort_keys=True) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def record_admit(
        self,
        job_id: str,
        key: str,
        spec: Mapping[str, Any],
        timeout_s: Optional[float] = None,
    ) -> None:
        self.append(
            {
                "event": "admit",
                "id": job_id,
                "key": key,
                "spec": dict(spec),
                "timeout_s": timeout_s,
            }
        )

    def record_complete(
        self,
        job_id: str,
        status: str,
        ok: bool,
        text: Optional[str],
        key: Optional[str] = None,
        error: Optional[Mapping[str, str]] = None,
    ) -> None:
        if status not in TERMINAL_STATUSES:
            raise ValueError(f"not a terminal status: {status!r}")
        self.append(
            {
                "event": "complete",
                "id": job_id,
                "status": status,
                "ok": bool(ok),
                "text": text,
                "key": key,
                "error": dict(error) if error else None,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.close()

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # replay / compaction
    # ------------------------------------------------------------------
    def replay(self) -> JournalState:
        """Fold the journal into per-job terminal state, in journal order."""
        records, torn = load_records(self.path)
        entries: "Dict[str, JournalEntry]" = {}
        order: List[str] = []
        for record in records:
            job_id = record.get("id")
            if not isinstance(job_id, str):
                continue
            entry = entries.get(job_id)
            if entry is None:
                entry = entries[job_id] = JournalEntry(job_id=job_id)
                order.append(job_id)
            if record.get("event") == "admit":
                entry.key = record.get("key")
                entry.spec = record.get("spec")
                entry.timeout_s = record.get("timeout_s")
            elif record.get("event") == "complete":
                entry.status = record.get("status")
                entry.ok = record.get("ok")
                entry.text = record.get("text")
                entry.error = record.get("error")
                if record.get("key") and not entry.key:
                    entry.key = record.get("key")
        state = JournalState(records=len(records), torn_tail=torn)
        for job_id in order:
            entry = entries[job_id]
            if entry.terminal:
                state.completed.append(entry)
            elif entry.spec is not None:
                state.pending.append(entry)
        return state

    def compact(self, keep: Optional[int] = None) -> JournalState:
        """Rewrite the journal in its minimal form (run on graceful drain).

        Finished jobs collapse to a single ``complete`` record, pending
        admits survive verbatim; with ``keep``, only the most recent
        ``keep`` finished jobs are retained (pending jobs always are).
        Atomic: written to a temp file in the same directory, then
        ``rename``d over the old journal.
        """
        state = self.replay()
        self.close()
        completed = state.completed
        if keep is not None:
            completed = completed[-keep:]
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".journal-compact-"
        )
        seq = 0
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                for entry in completed:
                    seq += 1
                    handle.write(
                        json.dumps(
                            {
                                "event": "complete",
                                "id": entry.job_id,
                                "status": entry.status,
                                "ok": entry.ok,
                                "text": entry.text,
                                "key": entry.key,
                                "error": entry.error,
                                "seq": seq,
                                "v": JOURNAL_VERSION,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                for entry in state.pending:
                    seq += 1
                    handle.write(
                        json.dumps(
                            {
                                "event": "admit",
                                "id": entry.job_id,
                                "key": entry.key,
                                "spec": entry.spec,
                                "timeout_s": entry.timeout_s,
                                "seq": seq,
                                "v": JOURNAL_VERSION,
                            },
                            sort_keys=True,
                        )
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._seq = seq
        return state


def audit_journal(path: str) -> CheckReport:
    """Audit a journal file's internal consistency (:mod:`repro.check`).

    Flags completes without a matching admit or embedded spec (an
    unreplayable orphan), duplicate terminal states, non-terminal
    statuses in ``complete`` records, successful completions without
    response text, and interior (non-tail) corruption.
    """
    report = CheckReport(target=f"journal {path}")
    report.ran("journal.parse")
    report.ran("journal.lifecycle")
    try:
        records, torn = load_records(path)
    except ValueError as error:
        report.add("journal.corrupt", path, str(error))
        return report
    if torn:
        # Expected after kill -9; recorded as a check, not a violation.
        report.ran("journal.torn-tail-dropped")
    admitted: Dict[str, int] = {}
    completed: Dict[str, str] = {}
    for index, record in enumerate(records, start=1):
        event = record.get("event")
        job_id = record.get("id")
        subject = f"record {index}"
        if event not in ("admit", "complete"):
            report.add("journal.unknown-event", subject, f"event {event!r}")
            continue
        if not isinstance(job_id, str) or not job_id:
            report.add("journal.missing-id", subject, "record has no job id")
            continue
        if event == "admit":
            if job_id in admitted:
                report.add(
                    "journal.duplicate-admit",
                    job_id,
                    f"admitted again at record {index}",
                )
            if not isinstance(record.get("spec"), Mapping):
                report.add(
                    "journal.admit-without-spec",
                    job_id,
                    "admit record carries no job spec (unreplayable)",
                )
            admitted[job_id] = index
        else:
            status = record.get("status")
            if status not in TERMINAL_STATUSES:
                report.add(
                    "journal.nonterminal-complete",
                    job_id,
                    f"complete record with status {status!r}",
                )
            if job_id in completed:
                report.add(
                    "journal.duplicate-complete",
                    job_id,
                    f"already terminal ({completed[job_id]}), "
                    f"completed again at record {index}",
                )
            if job_id not in admitted and record.get("spec") is None:
                # Compacted journals legitimately drop the admit; the
                # complete record then stands alone and must be usable.
                if status == "done" and not record.get("text"):
                    report.add(
                        "journal.orphan-complete",
                        job_id,
                        "complete without admit or response text",
                    )
            if status == "done" and not record.get("text"):
                report.add(
                    "journal.done-without-text",
                    job_id,
                    "successful completion carries no response text",
                )
            completed[job_id] = str(status)
    return report
