"""repro.resilience — convergence under perturbation, at the systems level.

The paper's schedulers converge to equilibrium even when perturbed
(local rescheduling, §2.2); this package gives the production layers
around them the same property:

* :mod:`~repro.resilience.faults` — a deterministic, seedable
  fault-injection registry (:class:`FaultPlan`) with named failure
  points compiled into ``repro.serve`` and ``repro.sweep``, replacing
  ad-hoc crash-injection monkeypatching with reproducible chaos tests;
* :mod:`~repro.resilience.journal` — the write-ahead job journal
  (:class:`JobJournal`) that makes ``repro-hls serve`` survive
  ``kill -9`` with every admitted job replayed on restart, audited by
  :func:`audit_journal` through :mod:`repro.check`;
* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` (capped
  exponential backoff, deterministic full jitter) and
  :class:`CircuitBreaker` for well-behaved clients;
* :mod:`~repro.resilience.checkpoint` — :class:`SweepCheckpoint`,
  item-level resume for interrupted ``explore``/``table1``/``table2``
  sweeps.

See ``docs/ROBUSTNESS.md`` for the operator's guide.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    SweepCheckpoint,
    resume_map,
)
from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    arm,
    fault_point,
)
from repro.resilience.journal import (
    JOURNAL_VERSION,
    JobJournal,
    JournalEntry,
    JournalState,
    audit_journal,
    load_records,
)
from repro.resilience.retry import CircuitBreaker, CircuitOpen, RetryPolicy

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "arm",
    "active_plan",
    "fault_point",
    "JOURNAL_VERSION",
    "JobJournal",
    "JournalEntry",
    "JournalState",
    "audit_journal",
    "load_records",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "CHECKPOINT_VERSION",
    "SweepCheckpoint",
    "resume_map",
]
