"""Retry backoff and circuit breaking for clients of flaky dependencies.

Two small, deterministic-when-seeded primitives shared by
:class:`repro.serve.client.Client` and the resilience tests:

* :class:`RetryPolicy` — capped exponential backoff with full jitter
  (AWS-style: ``sleep = uniform(0, min(cap, base * 2**attempt))``).
  Jitter is drawn from the policy's own ``random.Random(seed)`` stream,
  so a seeded policy produces the identical delay sequence on every run
  — which is what lets the chaos suite assert timing-dependent behavior
  byte for byte.  A server-provided ``Retry-After`` hint overrides the
  computed delay (never sleeps *less* than the server asked).

* :class:`CircuitBreaker` — counts consecutive failures; at the
  threshold the circuit *opens* and calls fail fast with
  :class:`CircuitOpen` instead of hammering a dying dependency.  After
  ``reset_s`` the circuit goes *half-open*: one probe call is allowed
  through, success closes the circuit, failure reopens it.  Time is an
  injectable callable (default :func:`time.monotonic`) so tests never
  sleep.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional


class CircuitOpen(Exception):
    """The circuit breaker is open; the call was not attempted."""

    def __init__(self, failures: int, retry_in_s: float) -> None:
        super().__init__(
            f"circuit open after {failures} consecutive failures; "
            f"probe allowed in {max(retry_in_s, 0.0):.3f}s"
        )
        self.failures = failures
        self.retry_in_s = retry_in_s


#: Jitter strategies a :class:`RetryPolicy` can draw delays from.
JITTER_MODES = ("full", "equal")


class RetryPolicy:
    """Capped exponential backoff with deterministic, seeded jitter.

    ``jitter="full"`` (the default) draws ``uniform(0, ceiling)`` —
    maximal decorrelation, the right choice for competing clients.
    ``jitter="equal"`` draws ``ceiling/2 + uniform(0, ceiling/2)``: each
    delay lands in the upper half of its ceiling, so while ceilings keep
    doubling the delay sequence is monotonically non-decreasing — which
    is what the shard supervisor needs for respawn backoff (a crash-loop
    must never respawn *faster* than the previous attempt).
    """

    def __init__(
        self,
        retries: int = 3,
        base_s: float = 0.05,
        cap_s: float = 2.0,
        multiplier: float = 2.0,
        seed: Optional[object] = None,
        jitter: str = "full",
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if base_s <= 0 or cap_s <= 0:
            raise ValueError("base_s and cap_s must be positive")
        if multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {multiplier}")
        if jitter not in JITTER_MODES:
            raise ValueError(
                f"jitter must be one of {JITTER_MODES}, got {jitter!r}"
            )
        self.retries = retries
        self.base_s = base_s
        self.cap_s = cap_s
        self.multiplier = multiplier
        self.jitter = jitter
        # Seeds may be ints or strings (random.Random hashes either);
        # string seeds let callers derive per-entity streams like
        # "respawn:<seed>:<shard-name>" deterministically.
        self._rng = random.Random(seed)

    def delay(self, attempt: int, floor_s: Optional[float] = None) -> float:
        """Sleep before retry number ``attempt`` (0-based).

        ``floor_s`` is a server hint (``Retry-After``): the returned
        delay is never below it.
        """
        ceiling = min(self.cap_s, self.base_s * self.multiplier**attempt)
        if self.jitter == "equal":
            delay = ceiling / 2.0 + self._rng.uniform(0.0, ceiling / 2.0)
        else:
            delay = self._rng.uniform(0.0, ceiling)
        if floor_s is not None:
            delay = max(delay, floor_s)
        return delay

    def delays(self, floor_s: Optional[float] = None):
        """The full delay sequence for one call's retry budget."""
        return [self.delay(attempt, floor_s) for attempt in range(self.retries)]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe state."""

    def __init__(
        self,
        threshold: int = 8,
        reset_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_s < 0:
            raise ValueError(f"reset_s must be >= 0, got {reset_s}")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self.failures = 0
        self.opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half-open"``."""
        if self.opened_at is None:
            return "closed"
        if self._clock() - self.opened_at >= self.reset_s:
            return "half-open"
        return "open"

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpen` while open.

        In the half-open state exactly one caller is admitted as the
        probe; concurrent callers keep failing fast until the probe
        reports back.
        """
        state = self.state
        if state == "closed":
            return
        if state == "half-open" and not self._probing:
            self._probing = True
            return
        assert self.opened_at is not None
        retry_in = self.reset_s - (self._clock() - self.opened_at)
        raise CircuitOpen(self.failures, retry_in)

    def record_success(self) -> None:
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self.failures += 1
        self._probing = False
        if self.failures >= self.threshold:
            self.opened_at = self._clock()
