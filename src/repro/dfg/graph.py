"""The data-flow graph (DFG) container.

A DFG is the behavioral input of both schedulers.  It consists of

* *primary inputs* — named external values,
* *constants* — literal values,
* *operation nodes* — each with a kind, an ordered operand list and an
  optional *branch path* used for mutual exclusion (paper §5.1),
* *primary outputs* — named references to node results.

Edges are implicit: each node stores its operand :class:`Port`\\ s, which
refer to other nodes, primary inputs or constants.  The graph must be
acyclic (loops are handled by the loop-folding transform, paper §5.2, not by
back edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import CycleError, DFGError
from repro.dfg.ops import OperationSet


@dataclass(frozen=True)
class Port:
    """A reference to a data source feeding an operation input.

    ``source`` discriminates the reference:

    * ``"node"`` — the output of operation node ``name``;
    * ``"input"`` — the primary input called ``name``;
    * ``"const"`` — the literal integer ``value``.
    """

    source: str
    name: str = ""
    value: int = 0

    @staticmethod
    def node(name: str) -> "Port":
        """Reference the output of operation node ``name``."""
        return Port("node", name=name)

    @staticmethod
    def input(name: str) -> "Port":
        """Reference primary input ``name``."""
        return Port("input", name=name)

    @staticmethod
    def const(value: int) -> "Port":
        """Reference the literal constant ``value``."""
        return Port("const", value=value)

    @property
    def is_node(self) -> bool:
        return self.source == "node"

    @property
    def is_input(self) -> bool:
        return self.source == "input"

    @property
    def is_const(self) -> bool:
        return self.source == "const"

    def signal_name(self) -> str:
        """Stable name of the signal this port carries.

        Two ports carrying the same signal share multiplexer inputs in the
        MFSA mux optimiser, so this name is the sharing key.
        """
        if self.is_const:
            return f"#{self.value}"
        if self.is_input:
            return f"in:{self.name}"
        return f"op:{self.name}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.signal_name()


#: A branch path is a tuple of ``(condition_id, arm)`` pairs; ``arm`` is
#: ``True`` for the then-branch and ``False`` for the else-branch.  Two
#: operations are mutually exclusive iff their paths disagree on some
#: condition they share (paper §5.1).
BranchPath = Tuple[Tuple[str, bool], ...]


@dataclass
class Node:
    """One operation node of a DFG."""

    name: str
    kind: str
    operands: Tuple[Port, ...]
    branch: BranchPath = ()

    def __post_init__(self) -> None:
        self.kind = str(self.kind)
        self.operands = tuple(self.operands)
        self.branch = tuple(self.branch)

    def operand_names(self) -> Tuple[str, ...]:
        """Signal names of the operand ports (mux-sharing keys)."""
        return tuple(port.signal_name() for port in self.operands)

    def predecessor_names(self) -> Tuple[str, ...]:
        """Names of operation nodes feeding this node (deduplicated, ordered)."""
        seen: List[str] = []
        for port in self.operands:
            if port.is_node and port.name not in seen:
                seen.append(port.name)
        return tuple(seen)


def branches_mutually_exclusive(a: BranchPath, b: BranchPath) -> bool:
    """Whether two branch paths can never be active simultaneously."""
    conditions_a = dict(a)
    for condition, arm in b:
        if condition in conditions_a and conditions_a[condition] != arm:
            return True
    return False


class DFG:
    """An acyclic data-flow graph of operations.

    Nodes are addressed by unique string names.  Insertion order is
    preserved everywhere (deterministic behaviour is load-bearing: the paper
    breaks priority ties "arbitrarily" and we break them by insertion order
    so runs are reproducible).
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._inputs: List[str] = []
        self._outputs: Dict[str, Port] = {}
        self._successors: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> Port:
        """Declare a primary input and return a port referencing it."""
        if name in self._inputs:
            raise DFGError(f"primary input {name!r} already declared")
        self._inputs.append(name)
        return Port.input(name)

    def add_op(
        self,
        kind: str,
        operands: Sequence[Port],
        name: Optional[str] = None,
        branch: BranchPath = (),
    ) -> Port:
        """Add an operation node and return a port referencing its output.

        ``operands`` may reference nodes added earlier, primary inputs or
        constants.  A fresh unique name is generated when ``name`` is None.
        """
        if name is None:
            name = f"n{len(self._nodes)}"
        if name in self._nodes:
            raise DFGError(f"node {name!r} already exists")
        for port in operands:
            self._check_port(port)
        node = Node(name=name, kind=str(kind), operands=tuple(operands), branch=branch)
        self._nodes[name] = node
        self._successors[name] = []
        for pred in node.predecessor_names():
            self._successors[pred].append(name)
        return Port.node(name)

    def set_output(self, name: str, port: Port) -> None:
        """Declare ``port`` as the primary output called ``name``."""
        self._check_port(port)
        self._outputs[name] = port

    def _check_port(self, port: Port) -> None:
        if port.is_node and port.name not in self._nodes:
            raise DFGError(f"port references unknown node {port.name!r}")
        if port.is_input and port.name not in self._inputs:
            raise DFGError(f"port references undeclared input {port.name!r}")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary input names, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> Mapping[str, Port]:
        """Primary outputs: name → source port."""
        return dict(self._outputs)

    def node(self, name: str) -> Node:
        """Return the node called ``name``."""
        try:
            return self._nodes[name]
        except KeyError:
            raise DFGError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_names(self) -> Tuple[str, ...]:
        """All node names in insertion order."""
        return tuple(self._nodes)

    def nodes(self) -> Tuple[Node, ...]:
        """All nodes in insertion order."""
        return tuple(self._nodes.values())

    def predecessors(self, name: str) -> Tuple[str, ...]:
        """Operation nodes feeding ``name`` (deduplicated)."""
        return self.node(name).predecessor_names()

    def successors(self, name: str) -> Tuple[str, ...]:
        """Operation nodes consuming the output of ``name``."""
        self.node(name)
        return tuple(self._successors[name])

    def source_nodes(self) -> Tuple[str, ...]:
        """Nodes with no operation predecessors."""
        return tuple(n.name for n in self if not n.predecessor_names())

    def sink_nodes(self) -> Tuple[str, ...]:
        """Nodes whose output feeds no other operation."""
        return tuple(n.name for n in self if not self._successors[n.name])

    def kinds_used(self) -> Tuple[str, ...]:
        """Distinct operation kinds present, in first-appearance order."""
        seen: List[str] = []
        for node in self:
            if node.kind not in seen:
                seen.append(node.kind)
        return tuple(seen)

    def count_by_kind(self) -> Dict[str, int]:
        """Number of operations per kind."""
        counts: Dict[str, int] = {}
        for node in self:
            counts[node.kind] = counts.get(node.kind, 0) + 1
        return counts

    def mutually_exclusive(self, a: str, b: str) -> bool:
        """Whether nodes ``a`` and ``b`` lie on exclusive branches (§5.1)."""
        return branches_mutually_exclusive(self.node(a).branch, self.node(b).branch)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> Tuple[str, ...]:
        """Node names in a dependency-respecting order.

        Raises :class:`CycleError` if the graph has a cycle (only possible
        if the graph was mutated behind the API's back, since ``add_op``
        only allows references to existing nodes).
        """
        in_degree = {name: len(self.predecessors(name)) for name in self._nodes}
        ready = [name for name, degree in in_degree.items() if degree == 0]
        order: List[str] = []
        cursor = 0
        while cursor < len(ready):
            name = ready[cursor]
            cursor += 1
            order.append(name)
            for succ in self._successors[name]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            raise CycleError(f"DFG {self.name!r} contains a dependency cycle")
        return tuple(order)

    def validate(self, ops: Optional[OperationSet] = None) -> None:
        """Check structural invariants; with ``ops``, also arity and kinds.

        Raises a :class:`~repro.errors.DFGError` subclass on any violation.
        """
        self.topological_order()
        for name, port in self._outputs.items():
            self._check_port(port)
        if ops is not None:
            for node in self:
                spec = ops.spec(node.kind)
                if len(node.operands) != spec.arity:
                    raise DFGError(
                        f"node {node.name!r} ({node.kind}) has "
                        f"{len(node.operands)} operands, expected {spec.arity}"
                    )

    def transitive_predecessors(self, name: str) -> Set[str]:
        """All nodes reachable backwards from ``name`` (excluding itself)."""
        seen: Set[str] = set()
        stack = list(self.predecessors(name))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.predecessors(current))
        return seen

    def transitive_successors(self, name: str) -> Set[str]:
        """All nodes reachable forwards from ``name`` (excluding itself)."""
        seen: Set[str] = set()
        stack = list(self.successors(name))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.successors(current))
        return seen

    # ------------------------------------------------------------------
    # copying / renaming
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "DFG":
        """Deep copy of the graph (nodes are immutable-ish, ports frozen)."""
        clone = DFG(name or self.name)
        clone._inputs = list(self._inputs)
        for node in self:
            clone._nodes[node.name] = Node(
                name=node.name,
                kind=node.kind,
                operands=node.operands,
                branch=node.branch,
            )
            clone._successors[node.name] = []
        for node in clone:
            for pred in node.predecessor_names():
                clone._successors[pred].append(node.name)
        clone._outputs = dict(self._outputs)
        return clone

    def renamed(self, prefix: str) -> "DFG":
        """Copy with every node name prefixed (used by loop unfolding)."""
        clone = DFG(f"{prefix}{self.name}")
        clone._inputs = list(self._inputs)

        def rename_port(port: Port) -> Port:
            if port.is_node:
                return Port.node(prefix + port.name)
            return port

        for node in self:
            new_name = prefix + node.name
            clone._nodes[new_name] = Node(
                name=new_name,
                kind=node.kind,
                operands=tuple(rename_port(p) for p in node.operands),
                branch=node.branch,
            )
            clone._successors[new_name] = []
        for node in clone:
            for pred in node.predecessor_names():
                clone._successors[pred].append(node.name)
        for out_name, port in self._outputs.items():
            clone._outputs[out_name] = rename_port(port)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DFG({self.name!r}, {len(self)} ops, kinds={list(self.kinds_used())})"
