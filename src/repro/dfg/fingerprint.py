"""Canonical DFG fingerprinting — the content address of a design.

The serving layer (:mod:`repro.serve`) deduplicates synthesis work by
content: two requests for the *same* computation must hash to the same
cache key even when the client renamed every node or rebuilt the graph
in a different insertion order.  :func:`dfg_fingerprint` provides that
key: a sha256 over a *topologically normalised* encoding of the graph in
which every operation node is identified purely by its structure —
operation kind, operand structure (recursively), and branch path — never
by its name.

Normalisation rules:

* **node names are erased** — a node's identity is the Merkle hash of
  ``(kind, operands, branch)``, where node-operands contribute their own
  structural hash (computable in one topological pass because the graph
  is acyclic);
* **insertion order is erased** — the graph-level encoding carries the
  *sorted multiset* of node hashes, so any construction order of the
  same graph collides;
* **the interface is kept** — primary input names, primary output names
  and branch condition identifiers are part of the design's contract
  with the outside world (they survive into the RTL port list), so they
  hash as-is;
* **everything semantic changes the hash** — any edge rewiring, kind
  change, constant change, added/removed node or output remaps to a
  different fingerprint (up to sha256 collisions).

Two structurally identical subtrees hash identically — that is correct,
not a collision: they are interchangeable by isomorphism.

:func:`library_fingerprint` and :func:`params_fingerprint` extend the
same idea to the other inputs of a synthesis run (cell library and the
full parameter tuple), so ``repro.serve`` can content-address a whole
job with :func:`job_fingerprint`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping

from repro.dfg.graph import DFG, Port
from repro.library.cells import CellLibrary

#: Bump when the canonical encoding changes shape (invalidates caches).
FINGERPRINT_VERSION = 1


def sha256_of(obj: Any) -> str:
    """sha256 hex digest of a JSON-canonicalised python value."""
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _encode_port(port: Port, node_hashes: Mapping[str, str]) -> List[Any]:
    if port.is_const:
        return ["const", port.value]
    if port.is_input:
        return ["input", port.name]
    return ["node", node_hashes[port.name]]


def node_structural_hashes(dfg: DFG) -> Dict[str, str]:
    """Per-node Merkle hashes, name-free and insertion-order-free.

    Computed in one topological pass: a node's hash folds in its kind,
    the encoding of each operand in positional order (operand order is
    semantic — ``a - b`` is not ``b - a``), and its branch path.
    """
    hashes: Dict[str, str] = {}
    for name in dfg.topological_order():
        node = dfg.node(name)
        hashes[name] = sha256_of(
            [
                "op",
                node.kind,
                [_encode_port(port, hashes) for port in node.operands],
                [[condition, bool(arm)] for condition, arm in node.branch],
            ]
        )
    return hashes


def canonical_encoding(dfg: DFG) -> Dict[str, Any]:
    """The normalised graph encoding :func:`dfg_fingerprint` hashes.

    Exposed separately so tests (and curious users) can inspect exactly
    what two designs agree or disagree on.
    """
    hashes = node_structural_hashes(dfg)
    return {
        "format": "repro-dfg-fingerprint",
        "version": FINGERPRINT_VERSION,
        "inputs": sorted(dfg.inputs),
        "nodes": sorted(hashes.values()),
        "outputs": sorted(
            [name, _encode_port(port, hashes)]
            for name, port in dfg.outputs.items()
        ),
    }


def dfg_fingerprint(dfg: DFG) -> str:
    """Canonical content address of a DFG (sha256 hex).

    Invariant under node renaming and construction order; sensitive to
    any operation, edge, constant, branch or interface change.
    """
    return sha256_of(canonical_encoding(dfg))


def library_fingerprint(library: CellLibrary) -> str:
    """Content address of a cell library's cost model.

    Cell names are included (they surface in the synthesised binding, so
    two libraries differing only in names produce different outputs);
    the mux cost model is sampled through its public ``cost`` curve,
    which captures both the explicit table and the fitted extension.
    """
    return sha256_of(
        {
            "format": "repro-library-fingerprint",
            "version": FINGERPRINT_VERSION,
            "cells": sorted(
                [cell.name, sorted(cell.kinds), cell.area]
                for cell in library.cells()
            ),
            "register_area": library.register_area,
            "mux_cost_curve": [
                library.mux_costs.cost(r) for r in range(2, 34)
            ],
        }
    )


def params_fingerprint(params: Mapping[str, Any]) -> str:
    """Content address of a synthesis parameter mapping.

    The mapping must be JSON-serialisable; key order is irrelevant.
    """
    return sha256_of(
        {
            "format": "repro-params-fingerprint",
            "version": FINGERPRINT_VERSION,
            "params": dict(params),
        }
    )


def job_fingerprint(
    dfg: DFG,
    params: Mapping[str, Any],
    library: CellLibrary = None,
) -> str:
    """Content address of one full synthesis job (the serve cache key).

    Combines the canonical DFG fingerprint, the parameter tuple and —
    when the job allocates against one — the cell library cost model.
    """
    return sha256_of(
        [
            "repro-job-fingerprint",
            FINGERPRINT_VERSION,
            dfg_fingerprint(dfg),
            params_fingerprint(params),
            library_fingerprint(library) if library is not None else None,
        ]
    )
