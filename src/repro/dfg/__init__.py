"""Data-flow-graph substrate.

This package provides everything the schedulers consume:

* :mod:`repro.dfg.ops` — operation kinds (``+``, ``*``, comparisons, logic)
  with per-kind latency/delay/commutativity metadata;
* :mod:`repro.dfg.graph` — the :class:`~repro.dfg.graph.DFG` container with
  nodes, edges, primary inputs/outputs and validation;
* :mod:`repro.dfg.builder` — a fluent construction API;
* :mod:`repro.dfg.parser` — a small behavioral language compiled to a DFG;
* :mod:`repro.dfg.analysis` — ASAP/ALAP/mobility/critical-path analyses;
* :mod:`repro.dfg.transforms` — conditional merging, loop folding, etc.;
* :mod:`repro.dfg.pipeline` — structural/functional pipelining transforms;
* :mod:`repro.dfg.generators` — random DFGs for property testing.
"""

from repro.dfg.ops import OpKind, OpSpec, OperationSet, standard_operation_set
from repro.dfg.graph import DFG, Node, Port
from repro.dfg.builder import DFGBuilder
from repro.dfg.parser import parse_behavior
from repro.dfg.analysis import (
    TimingModel,
    asap_schedule,
    alap_schedule,
    critical_path_length,
    mobilities,
    type_concurrency,
)
from repro.dfg.optimize import (
    balance_tree,
    constant_fold,
    eliminate_dead_code,
)
from repro.dfg.transforms import (
    LoopFolder,
    add_loop_control,
    common_subexpression_elimination,
    merge_conditional_shared_ops,
)

__all__ = [
    "OpKind",
    "OpSpec",
    "OperationSet",
    "standard_operation_set",
    "DFG",
    "Node",
    "Port",
    "DFGBuilder",
    "parse_behavior",
    "TimingModel",
    "asap_schedule",
    "alap_schedule",
    "critical_path_length",
    "mobilities",
    "type_concurrency",
    "constant_fold",
    "eliminate_dead_code",
    "balance_tree",
    "merge_conditional_shared_ops",
    "common_subexpression_elimination",
    "add_loop_control",
    "LoopFolder",
]
