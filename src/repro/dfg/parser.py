"""A small behavioral language compiled to data-flow graphs.

High-level synthesis systems of the paper's era read behavioral text;
this module provides the equivalent front door::

    input x dx u y a
    x1 = x + dx
    u1 = u - (3 * x) * (u * dx) - (3 * y) * dx
    c  = x1 < a
    output x1 u1 c

Statements
----------
* ``input <name> ...`` — declare primary inputs;
* ``<name> = <expression>`` — assignment; every operator becomes one DFG
  node (named after the target for single-operator right-hand sides);
* ``output <name> ...`` — declare outputs (names must be assigned values
  or inputs);
* ``branch <cond> then`` / ``branch <cond> else`` / ``end <cond>`` —
  mutual-exclusion regions (§5.1);
* ``#`` starts a comment.

Expressions support ``+ - * / & | ^ << >> < > ==`` with conventional
precedence, parentheses, unary ``- ~``, integer literals and previously
defined names.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.dfg.builder import DFGBuilder, Value
from repro.dfg.graph import DFG
from repro.dfg.ops import OpKind

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><<|>>|==|[+\-*/&|^<>()~]))"
)

_BINARY_LEVELS: Tuple[Tuple[Tuple[str, str], ...], ...] = (
    (("|", OpKind.OR),),
    (("^", OpKind.XOR),),
    (("&", OpKind.AND),),
    (("==", OpKind.EQ), ("<", OpKind.LT), (">", OpKind.GT)),
    (("<<", OpKind.SHL), (">>", OpKind.SHR)),
    (("+", OpKind.ADD), ("-", OpKind.SUB)),
    (("*", OpKind.MUL), ("/", OpKind.DIV)),
)


def _tokenize(text: str, line_no: int) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise ParseError(f"line {line_no}: cannot tokenize {remainder!r}")
        position = match.end()
        if match.group("num") is not None:
            tokens.append(("num", match.group("num")))
        elif match.group("name") is not None:
            tokens.append(("name", match.group("name")))
        else:
            tokens.append(("op", match.group("op")))
    return tokens


class _ExpressionParser:
    """Recursive-descent parser over one token stream."""

    def __init__(
        self,
        tokens: List[Tuple[str, str]],
        builder: DFGBuilder,
        scope: Dict[str, Value],
        line_no: int,
    ) -> None:
        self.tokens = tokens
        self.builder = builder
        self.scope = scope
        self.line_no = line_no
        self.position = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError(f"line {self.line_no}: unexpected end of expression")
        self.position += 1
        return token

    def expect_op(self, symbol: str) -> None:
        token = self.take()
        if token != ("op", symbol):
            raise ParseError(
                f"line {self.line_no}: expected {symbol!r}, got {token[1]!r}"
            )

    def parse(self) -> Value:
        value = self.parse_level(0)
        if self.peek() is not None:
            raise ParseError(
                f"line {self.line_no}: trailing tokens after expression "
                f"({self.tokens[self.position:]})"
            )
        return value

    def parse_level(self, level: int) -> Value:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        operators = dict(_BINARY_LEVELS[level])
        value = self.parse_level(level + 1)
        while True:
            token = self.peek()
            if token is None or token[0] != "op" or token[1] not in operators:
                return value
            self.take()
            right = self.parse_level(level + 1)
            value = self.builder.op(operators[token[1]], value, right)

    def parse_unary(self) -> Value:
        token = self.peek()
        if token == ("op", "-"):
            self.take()
            return self.builder.op(OpKind.NEG, self.parse_unary())
        if token == ("op", "~"):
            self.take()
            return self.builder.op(OpKind.NOT, self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Value:
        token = self.take()
        if token[0] == "num":
            return self.builder.const(int(token[1]))
        if token[0] == "name":
            if token[1] not in self.scope:
                raise ParseError(
                    f"line {self.line_no}: unknown name {token[1]!r}"
                )
            return self.scope[token[1]]
        if token == ("op", "("):
            value = self.parse_level(0)
            self.expect_op(")")
            return value
        raise ParseError(f"line {self.line_no}: unexpected token {token[1]!r}")


def parse_behavior(text: str, name: str = "parsed") -> DFG:
    """Compile behavioral text to a :class:`~repro.dfg.graph.DFG`."""
    builder = DFGBuilder(name)
    scope: Dict[str, Value] = {}
    outputs: List[Tuple[int, str]] = []

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        head, _space, rest = line.partition(" ")

        if head == "input":
            for input_name in rest.split():
                if input_name in scope:
                    raise ParseError(
                        f"line {line_no}: name {input_name!r} already defined"
                    )
                scope[input_name] = builder.input(input_name)
            continue

        if head == "output":
            for output_name in rest.split():
                outputs.append((line_no, output_name))
            continue

        if head == "branch":
            parts = rest.split()
            if len(parts) != 2 or parts[1] not in ("then", "else"):
                raise ParseError(
                    f"line {line_no}: expected 'branch <cond> then|else'"
                )
            condition, arm = parts
            if arm == "then":
                builder.then_branch(condition)
            else:
                builder.else_branch(condition)
            continue

        if head == "end":
            condition = rest.strip()
            if not condition:
                raise ParseError(f"line {line_no}: expected 'end <cond>'")
            builder.end_branch(condition)
            continue

        if "=" in line and not line.startswith("="):
            target, _eq, expression = line.partition("=")
            target = target.strip()
            if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", target):
                raise ParseError(
                    f"line {line_no}: invalid assignment target {target!r}"
                )
            if target in scope:
                raise ParseError(
                    f"line {line_no}: name {target!r} already defined "
                    f"(the language is single-assignment)"
                )
            tokens = _tokenize(expression, line_no)
            parser = _ExpressionParser(tokens, builder, scope, line_no)
            scope[target] = parser.parse()
            continue

        raise ParseError(f"line {line_no}: cannot parse statement {line!r}")

    for line_no, output_name in outputs:
        if output_name not in scope:
            raise ParseError(
                f"line {line_no}: output {output_name!r} was never defined"
            )
        builder.output(output_name, scope[output_name])
    return builder.build()
