"""Operation kinds and their metadata.

A scheduler only needs to know, for every operation kind:

* its *type name* (the FU type that can execute it in pure scheduling mode),
* its *latency* in control steps (multi-cycle operations),
* its *combinational delay* in nanoseconds (for operation chaining),
* whether it is *commutative* (multiplexer input-sharing optimisation may
  swap the operands of commutative operations),
* its *arity* and a Python evaluator used by the reference simulator.

The kinds used by the paper's examples (``+ - * = & | < >`` …) are provided
by :func:`standard_operation_set`; users can register additional kinds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import UnknownOperationError


class OpKind(str, enum.Enum):
    """The operation kinds used by the paper's six design examples.

    The enum inherits from :class:`str` so kinds compare equal to their
    mnemonic strings, which keeps user-facing APIs ergonomic
    (``g.add_op("add", ...)`` and ``g.add_op(OpKind.ADD, ...)`` are the same).
    """

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    EQ = "eq"
    LT = "lt"
    GT = "gt"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    NEG = "neg"
    MIN = "min"
    MAX = "max"
    MOVE = "move"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Pretty one-character symbols used when rendering schedules and tables,
#: chosen to match the paper's notation (``*``, ``+``, ``?`` for minus, …).
OP_SYMBOLS: Mapping[str, str] = {
    OpKind.ADD: "+",
    OpKind.SUB: "-",
    OpKind.MUL: "*",
    OpKind.DIV: "/",
    OpKind.EQ: "=",
    OpKind.LT: "<",
    OpKind.GT: ">",
    OpKind.AND: "&",
    OpKind.OR: "|",
    OpKind.XOR: "^",
    OpKind.NOT: "!",
    OpKind.SHL: "<<",
    OpKind.SHR: ">>",
    OpKind.NEG: "~",
    OpKind.MIN: "m",
    OpKind.MAX: "M",
    OpKind.MOVE: ".",
}


def _evaluate_div(a: int, b: int) -> int:
    """Integer division that truncates toward zero (hardware-style)."""
    if b == 0:
        return 0
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


# Named (module-level) evaluators: specs must stay picklable so schedules,
# timing models and synthesis results can cross process-pool boundaries.
def _evaluate_add(a: int, b: int) -> int:
    return a + b


def _evaluate_sub(a: int, b: int) -> int:
    return a - b


def _evaluate_mul(a: int, b: int) -> int:
    return a * b


def _evaluate_eq(a: int, b: int) -> int:
    return int(a == b)


def _evaluate_lt(a: int, b: int) -> int:
    return int(a < b)


def _evaluate_gt(a: int, b: int) -> int:
    return int(a > b)


def _evaluate_and(a: int, b: int) -> int:
    return a & b


def _evaluate_or(a: int, b: int) -> int:
    return a | b


def _evaluate_xor(a: int, b: int) -> int:
    return a ^ b


def _evaluate_not(a: int) -> int:
    return ~a


def _evaluate_shl(a: int, b: int) -> int:
    return a << (b & 31)


def _evaluate_shr(a: int, b: int) -> int:
    return a >> (b & 31)


def _evaluate_neg(a: int) -> int:
    return -a


def _evaluate_move(a: int) -> int:
    return a


def _evaluate_default(*_args: int) -> int:
    return 0


_EVALUATORS: Mapping[str, Callable[..., int]] = {
    OpKind.ADD: _evaluate_add,
    OpKind.SUB: _evaluate_sub,
    OpKind.MUL: _evaluate_mul,
    OpKind.DIV: _evaluate_div,
    OpKind.EQ: _evaluate_eq,
    OpKind.LT: _evaluate_lt,
    OpKind.GT: _evaluate_gt,
    OpKind.AND: _evaluate_and,
    OpKind.OR: _evaluate_or,
    OpKind.XOR: _evaluate_xor,
    OpKind.NOT: _evaluate_not,
    OpKind.SHL: _evaluate_shl,
    OpKind.SHR: _evaluate_shr,
    OpKind.NEG: _evaluate_neg,
    OpKind.MIN: min,
    OpKind.MAX: max,
    OpKind.MOVE: _evaluate_move,
}

_COMMUTATIVE = {
    OpKind.ADD,
    OpKind.MUL,
    OpKind.EQ,
    OpKind.AND,
    OpKind.OR,
    OpKind.XOR,
    OpKind.MIN,
    OpKind.MAX,
}

_UNARY = {OpKind.NOT, OpKind.NEG, OpKind.MOVE}


@dataclass(frozen=True)
class OpSpec:
    """Static description of one operation kind.

    Attributes
    ----------
    kind:
        Canonical kind name (``"add"``, ``"mul"``, …).
    latency:
        Execution time in control steps (``>= 1``).  Multi-cycle operations
        (e.g. a 2-cycle multiplier) are handled by the schedulers per the
        paper's §5.3.
    delay_ns:
        Combinational propagation delay used by chaining-aware timing
        (paper §5.4).  Irrelevant unless a clocked :class:`TimingModel` with
        a finite clock period is in use.
    commutative:
        Whether operand order is irrelevant; exploited by the multiplexer
        input-sharing optimiser (paper §5.6).
    arity:
        Number of data inputs (1 or 2; the paper assumes at most 2).
    symbol:
        One-character rendering used in tables and grid dumps.
    evaluate:
        Pure-Python evaluator for the reference simulator.
    """

    kind: str
    latency: int = 1
    delay_ns: float = 1.0
    commutative: bool = False
    arity: int = 2
    symbol: str = "?"
    evaluate: Callable[..., int] = field(default=_evaluate_default, repr=False)

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"latency must be >= 1, got {self.latency}")
        if self.arity not in (1, 2):
            raise ValueError(f"arity must be 1 or 2, got {self.arity}")
        if self.delay_ns <= 0:
            raise ValueError(f"delay_ns must be positive, got {self.delay_ns}")

    def with_latency(self, latency: int) -> "OpSpec":
        """Return a copy of this spec with a different latency.

        Used to derive e.g. a 2-cycle multiplier from the standard set.
        """
        return OpSpec(
            kind=self.kind,
            latency=latency,
            delay_ns=self.delay_ns,
            commutative=self.commutative,
            arity=self.arity,
            symbol=self.symbol,
            evaluate=self.evaluate,
        )

    def with_delay(self, delay_ns: float) -> "OpSpec":
        """Return a copy of this spec with a different combinational delay."""
        return OpSpec(
            kind=self.kind,
            latency=self.latency,
            delay_ns=delay_ns,
            commutative=self.commutative,
            arity=self.arity,
            symbol=self.symbol,
            evaluate=self.evaluate,
        )


class OperationSet:
    """Registry of the :class:`OpSpec`\\ s available to one design.

    Per the paper, execution times (latencies, delays) are design inputs
    ("the user has to specify … execution time for each type of
    operations"), so they live here rather than on the DFG itself.  The same
    DFG can be scheduled under different operation sets (e.g. 1-cycle vs
    2-cycle multipliers) without rebuilding it.
    """

    def __init__(self, specs: Iterable[OpSpec] = ()) -> None:
        self._specs: Dict[str, OpSpec] = {}
        self._latencies: Dict[str, int] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: OpSpec) -> None:
        """Add or replace the spec for ``spec.kind``."""
        self._specs[str(spec.kind)] = spec
        self._latencies[str(spec.kind)] = spec.latency

    def spec(self, kind: str) -> OpSpec:
        """Return the spec for ``kind``; raise if it is not registered."""
        try:
            return self._specs[str(kind)]
        except KeyError:
            raise UnknownOperationError(
                f"operation kind {kind!r} is not registered"
            ) from None

    def __contains__(self, kind: str) -> bool:
        return str(kind) in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def kinds(self) -> Tuple[str, ...]:
        """All registered kind names, in registration order."""
        return tuple(self._specs)

    def latency(self, kind: str) -> int:
        """Latency in control steps of ``kind``."""
        try:
            return self._latencies[kind]
        except (KeyError, TypeError):
            return self.spec(kind).latency

    def delay_ns(self, kind: str) -> float:
        """Combinational delay in nanoseconds of ``kind``."""
        return self.spec(kind).delay_ns

    def copy(self) -> "OperationSet":
        """Shallow copy (specs are immutable, so this is a full copy)."""
        return OperationSet(self._specs.values())

    def with_latencies(self, latencies: Mapping[str, int]) -> "OperationSet":
        """Return a copy with the latencies of some kinds overridden.

        Example: ``ops.with_latencies({"mul": 2})`` models the paper's
        2-cycle multiplier column of Table 1.
        """
        derived = self.copy()
        for kind, latency in latencies.items():
            derived.register(self.spec(kind).with_latency(latency))
        return derived

    def with_delays(self, delays: Mapping[str, float]) -> "OperationSet":
        """Return a copy with the combinational delays overridden."""
        derived = self.copy()
        for kind, delay in delays.items():
            derived.register(self.spec(kind).with_delay(delay))
        return derived


def standard_operation_set(
    mul_latency: int = 1,
    delays_ns: Optional[Mapping[str, float]] = None,
) -> OperationSet:
    """Build the operation set used throughout the paper's examples.

    Parameters
    ----------
    mul_latency:
        Latency of multiplication (and division) in control steps.  Table 1
        uses both 1-cycle ("1") and 2-cycle ("2") multipliers.
    delays_ns:
        Optional per-kind combinational-delay overrides for chaining
        experiments.

    The default delays model a generic cell library: logic ≈ 2 ns,
    add/sub/compare ≈ 10 ns, multiply ≈ 40 ns.
    """
    default_delays = {
        OpKind.ADD: 10.0,
        OpKind.SUB: 10.0,
        OpKind.MUL: 40.0,
        OpKind.DIV: 40.0,
        OpKind.EQ: 6.0,
        OpKind.LT: 8.0,
        OpKind.GT: 8.0,
        OpKind.AND: 2.0,
        OpKind.OR: 2.0,
        OpKind.XOR: 2.5,
        OpKind.NOT: 1.0,
        OpKind.SHL: 4.0,
        OpKind.SHR: 4.0,
        OpKind.NEG: 6.0,
        OpKind.MIN: 9.0,
        OpKind.MAX: 9.0,
        OpKind.MOVE: 0.5,
    }
    ops = OperationSet()
    for kind in OpKind:
        latency = mul_latency if kind in (OpKind.MUL, OpKind.DIV) else 1
        ops.register(
            OpSpec(
                kind=kind.value,
                latency=latency,
                delay_ns=default_delays[kind],
                commutative=kind in _COMMUTATIVE,
                arity=1 if kind in _UNARY else 2,
                symbol=OP_SYMBOLS[kind],
                evaluate=_EVALUATORS[kind],
            )
        )
    if delays_ns:
        ops = ops.with_delays(delays_ns)
    return ops
