"""DFG transformations: conditional sharing, CSE, loop folding.

* :func:`merge_conditional_shared_ops` — §5.1: operations duplicated
  across mutually exclusive branches are collapsed to a single operation
  hoisted to the branches' common context ("we remove all of the
  operations which are shared between branches except one");
* :func:`common_subexpression_elimination` — the unconditional variant
  (the paper's examples deliberately do *not* CSE, e.g. HAL keeps two
  ``u·dx`` products; this transform lets users choose);
* :func:`add_loop_control` — §5.2: appends the increment + comparison
  pair that bounds a loop body's iteration time;
* :class:`LoopFolder` — §5.2 nested loops: schedule the innermost body
  under its local time constraint, then expose the whole loop as a single
  multi-cycle operation to the enclosing level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.errors import DFGError
from repro.dfg.graph import DFG, Port, branches_mutually_exclusive
from repro.dfg.ops import OpKind, OperationSet, OpSpec
from repro.dfg.analysis import TimingModel


def _rebuild(dfg: DFG, drop: Mapping[str, str], retag: Mapping[str, tuple]) -> DFG:
    """Rebuild a DFG with nodes in ``drop`` replaced by their substitute
    and branch tags overridden by ``retag``."""

    def resolve(name: str) -> str:
        while name in drop:
            name = drop[name]
        return name

    clone = DFG(dfg.name)
    for input_name in dfg.inputs:
        clone.add_input(input_name)
    for node in dfg:
        if node.name in drop:
            continue
        operands = tuple(
            Port.node(resolve(p.name)) if p.is_node else p for p in node.operands
        )
        clone.add_op(
            node.kind,
            operands,
            name=node.name,
            branch=retag.get(node.name, node.branch),
        )
    for out_name, port in dfg.outputs.items():
        clone.set_output(
            out_name, Port.node(resolve(port.name)) if port.is_node else port
        )
    return clone


def _operand_key(dfg: DFG, name: str, ops: Optional[OperationSet]) -> tuple:
    """Canonical (kind, operands) key; commutative operands are sorted."""
    node = dfg.node(name)
    signals = node.operand_names()
    commutative = False
    if ops is not None and node.kind in ops:
        commutative = ops.spec(node.kind).commutative
    if commutative:
        signals = tuple(sorted(signals))
    return (node.kind, signals)


def _common_branch_prefix(a: tuple, b: tuple) -> tuple:
    prefix = []
    for pair_a, pair_b in zip(a, b):
        if pair_a != pair_b:
            break
        prefix.append(pair_a)
    return tuple(prefix)


def merge_conditional_shared_ops(
    dfg: DFG, ops: Optional[OperationSet] = None
) -> DFG:
    """Collapse operations duplicated across exclusive branches (§5.1).

    Two operations merge when they are mutually exclusive, have the same
    kind and read the same signals (order-insensitive for commutative
    kinds when ``ops`` is given).  The survivor is hoisted to the
    branches' common prefix.  Runs to fixpoint.
    """
    current = dfg
    for _round in range(len(dfg) + 1):
        drop: Dict[str, str] = {}
        retag: Dict[str, tuple] = {}
        by_key: Dict[tuple, List[str]] = {}
        for node in current:
            by_key.setdefault(
                _operand_key(current, node.name, ops), []
            ).append(node.name)
        for _key, members in by_key.items():
            survivors: List[str] = []
            for name in members:
                node = current.node(name)
                merged = False
                for keeper in survivors:
                    keeper_node = current.node(keeper)
                    if branches_mutually_exclusive(
                        retag.get(keeper, keeper_node.branch), node.branch
                    ):
                        drop[name] = keeper
                        retag[keeper] = _common_branch_prefix(
                            retag.get(keeper, keeper_node.branch), node.branch
                        )
                        merged = True
                        break
                if not merged:
                    survivors.append(name)
        if not drop:
            return current
        current = _rebuild(current, drop, retag)
    return current


def common_subexpression_elimination(
    dfg: DFG, ops: Optional[OperationSet] = None
) -> DFG:
    """Merge structurally identical operations regardless of branches.

    Only operations on the *same* branch path merge (merging across
    non-exclusive different paths would change execution conditions).
    """
    current = dfg
    for _round in range(len(dfg) + 1):
        drop: Dict[str, str] = {}
        seen: Dict[tuple, str] = {}
        for node in current:
            key = _operand_key(current, node.name, ops) + (node.branch,)
            if key in seen:
                drop[node.name] = seen[key]
            else:
                seen[key] = node.name
        if not drop:
            return current
        current = _rebuild(current, drop, {})
    return current


def add_loop_control(
    dfg: DFG, counter: str = "loop_i", bound: str = "loop_n"
) -> DFG:
    """Append the §5.2 loop-control pair (increment + comparison).

    Adds primary inputs for the counter and bound, an increment
    (``counter + 1``) and an exit comparison (``counter' < bound``), and
    exposes both as outputs (``<counter>_next``, ``<counter>_continue``).
    """
    clone = dfg.copy()
    counter_port = clone.add_input(counter)
    bound_port = clone.add_input(bound)
    increment = clone.add_op(
        OpKind.ADD, [counter_port, Port.const(1)], name=f"{counter}_incr"
    )
    compare = clone.add_op(OpKind.LT, [increment, bound_port], name=f"{counter}_cmp")
    clone.set_output(f"{counter}_next", increment)
    clone.set_output(f"{counter}_continue", compare)
    return clone


@dataclass
class FoldedLoop:
    """A scheduled loop body packaged as a single outer-level operation.

    ``spec`` is the multi-cycle operation the enclosing level schedules
    ("the entire loop is treated as a single operation with an execution
    time equal to the loop's local time constraint", §5.2).
    """

    name: str
    body: DFG
    body_schedule: Mapping[str, int]
    local_cs: int
    spec: OpSpec


class LoopFolder:
    """Fold (possibly nested) loops innermost-first (§5.2).

    Usage::

        folder = LoopFolder(timing)
        inner = folder.fold("inner", inner_body, local_cs=4)
        # the enclosing DFG may now use kind inner.spec.kind
        outer_ops = folder.extended_ops()
    """

    def __init__(self, timing: TimingModel) -> None:
        self.timing = timing
        self._folded: Dict[str, FoldedLoop] = {}

    def fold(self, name: str, body: DFG, local_cs: int) -> FoldedLoop:
        """Schedule ``body`` in ``local_cs`` steps and register the loop op."""
        from repro.core.mfs import MFSScheduler  # local import: avoids cycle

        if name in self._folded:
            raise DFGError(f"loop {name!r} already folded")
        scheduler = MFSScheduler(
            body, self._timing_for_body(), cs=local_cs, mode="time"
        )
        result = scheduler.run()
        spec = OpSpec(
            kind=f"loop_{name}",
            latency=local_cs,
            delay_ns=1.0,
            commutative=False,
            arity=2,
            symbol="@",
            evaluate=lambda a, b: a,
        )
        folded = FoldedLoop(
            name=name,
            body=body,
            body_schedule=dict(result.schedule.starts),
            local_cs=local_cs,
            spec=spec,
        )
        self._folded[name] = folded
        return folded

    def _timing_for_body(self) -> TimingModel:
        """Bodies may themselves contain previously folded inner loops."""
        return TimingModel(
            ops=self.extended_ops(),
            clock_period_ns=self.timing.clock_period_ns,
        )

    def extended_ops(self) -> OperationSet:
        """The base operation set plus one spec per folded loop."""
        ops = self.timing.ops.copy()
        for folded in self._folded.values():
            ops.register(folded.spec)
        return ops

    def folded(self, name: str) -> FoldedLoop:
        """The folded loop called ``name``."""
        try:
            return self._folded[name]
        except KeyError:
            raise DFGError(f"no folded loop named {name!r}") from None
