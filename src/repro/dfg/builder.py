"""Fluent construction API for data-flow graphs.

:class:`DFGBuilder` wraps a :class:`~repro.dfg.graph.DFG` and hands out
:class:`Value` objects that overload the Python arithmetic operators, so the
paper's examples read like the behavioral code they came from::

    b = DFGBuilder("diffeq")
    x, dx, u, y, a = b.inputs("x", "dx", "u", "y", "a")
    x1 = x + dx
    u1 = u - (3 * x) * (u * dx) - (3 * y) * dx
    b.output("x1", x1)
    g = b.build()
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.dfg.graph import DFG, BranchPath, Port
from repro.dfg.ops import OpKind

Operand = Union["Value", Port, int]


class Value:
    """Handle to a data source inside a builder; supports operators."""

    __slots__ = ("builder", "port")

    def __init__(self, builder: "DFGBuilder", port: Port) -> None:
        self.builder = builder
        self.port = port

    # -- binary arithmetic -------------------------------------------------
    def __add__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.ADD, self, other)

    def __radd__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.ADD, other, self)

    def __sub__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.SUB, self, other)

    def __rsub__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.SUB, other, self)

    def __mul__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.MUL, self, other)

    def __rmul__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.MUL, other, self)

    def __truediv__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.DIV, self, other)

    def __and__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.AND, self, other)

    def __or__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.OR, self, other)

    def __xor__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.XOR, self, other)

    def __lshift__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.SHL, self, other)

    def __rshift__(self, other: Operand) -> "Value":
        return self.builder.op(OpKind.SHR, self, other)

    # -- comparisons (explicit methods: Python chains __lt__ awkwardly) ----
    def lt(self, other: Operand) -> "Value":
        """``self < other`` as a DFG comparison node."""
        return self.builder.op(OpKind.LT, self, other)

    def gt(self, other: Operand) -> "Value":
        """``self > other`` as a DFG comparison node."""
        return self.builder.op(OpKind.GT, self, other)

    def eq(self, other: Operand) -> "Value":
        """``self == other`` as a DFG comparison node."""
        return self.builder.op(OpKind.EQ, self, other)

    # -- unary --------------------------------------------------------------
    def __neg__(self) -> "Value":
        return self.builder.op(OpKind.NEG, self)

    def __invert__(self) -> "Value":
        return self.builder.op(OpKind.NOT, self)


class DFGBuilder:
    """Incrementally build a :class:`~repro.dfg.graph.DFG`.

    All node-creating calls honour the *current branch context* set by
    :meth:`then_branch` / :meth:`else_branch` / :meth:`end_branch`, which
    tags nodes with branch paths for mutual-exclusion scheduling (§5.1).
    """

    def __init__(self, name: str = "dfg") -> None:
        self._dfg = DFG(name)
        self._branch: BranchPath = ()

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def input(self, name: str) -> Value:
        """Declare one primary input."""
        return Value(self, self._dfg.add_input(name))

    def inputs(self, *names: str) -> Tuple[Value, ...]:
        """Declare several primary inputs at once."""
        return tuple(self.input(name) for name in names)

    def const(self, value: int) -> Value:
        """A literal constant value."""
        return Value(self, Port.const(value))

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _port(self, operand: Operand) -> Port:
        if isinstance(operand, Value):
            return operand.port
        if isinstance(operand, Port):
            return operand
        if isinstance(operand, int):
            return Port.const(operand)
        raise TypeError(f"cannot use {operand!r} as a DFG operand")

    def op(self, kind: str, *operands: Operand, name: Optional[str] = None) -> Value:
        """Add an operation node in the current branch context."""
        ports = [self._port(operand) for operand in operands]
        return Value(self, self._dfg.add_op(kind, ports, name=name, branch=self._branch))

    # ------------------------------------------------------------------
    # branches (mutual exclusion)
    # ------------------------------------------------------------------
    def then_branch(self, condition: str) -> None:
        """Enter the then-arm of ``condition``; subsequent ops are tagged."""
        self._branch = self._branch + ((condition, True),)

    def else_branch(self, condition: str) -> None:
        """Switch to (or enter) the else-arm of ``condition``."""
        trimmed = tuple(pair for pair in self._branch if pair[0] != condition)
        self._branch = trimmed + ((condition, False),)

    def end_branch(self, condition: str) -> None:
        """Leave ``condition``'s branch context."""
        self._branch = tuple(pair for pair in self._branch if pair[0] != condition)

    # ------------------------------------------------------------------
    # outputs / result
    # ------------------------------------------------------------------
    def output(self, name: str, value: Operand) -> None:
        """Declare a primary output."""
        self._dfg.set_output(name, self._port(value))

    def outputs(self, **values: Operand) -> None:
        """Declare several primary outputs by keyword."""
        for name, value in values.items():
            self.output(name, value)

    def build(self) -> DFG:
        """Validate structure and return the built DFG."""
        self._dfg.validate()
        return self._dfg
