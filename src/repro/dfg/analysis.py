"""Timing analyses: ASAP, ALAP, mobility, critical path, concurrency.

These are the paper's Step 1/Step 2 ingredients (§3.2).  All schedules map
node name → *start* control step, 1-based.  A node of latency ``k`` occupies
steps ``s … s+k-1`` (§5.3: "k consecutive single-cycle operations").

Chaining (§5.4) is supported through :class:`TimingModel`: when a finite
clock period is set, consecutive data-dependent single-cycle operations may
share a control step as long as their accumulated combinational delay fits
in the period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import InfeasibleScheduleError, ScheduleError
from repro.dfg.graph import DFG
from repro.dfg.ops import OperationSet


@dataclass(frozen=True)
class TimingModel:
    """Execution-time model for one scheduling run.

    Attributes
    ----------
    ops:
        The operation set supplying latencies and combinational delays.
    clock_period_ns:
        Control-step clock period ``T`` (§5.4).  ``None`` disables chaining:
        every operation starts at a step boundary.
    """

    ops: OperationSet
    clock_period_ns: Optional[float] = None

    @property
    def chaining(self) -> bool:
        """Whether operation chaining is enabled."""
        return self.clock_period_ns is not None

    def latency(self, kind: str) -> int:
        """Latency of ``kind`` in control steps."""
        return self.ops.latency(kind)

    def delay_ns(self, kind: str) -> float:
        """Combinational delay of ``kind`` in nanoseconds."""
        return self.ops.delay_ns(kind)

    def check_kind_fits_clock(self, kind: str) -> None:
        """Raise if a single-cycle ``kind`` cannot fit one clock period."""
        if not self.chaining:
            return
        if self.latency(kind) == 1 and self.delay_ns(kind) > self.clock_period_ns:
            raise ScheduleError(
                f"operation kind {kind!r} has delay {self.delay_ns(kind)} ns, "
                f"longer than the clock period {self.clock_period_ns} ns"
            )


#: Within-step finishing offset assigned to operations that complete exactly
#: at a step boundary (multi-cycle ops, or when chaining is disabled): any
#: dependent operation must start in a *later* step.
_FULL_STEP = float("inf")


def _forward_times(
    dfg: DFG,
    timing: TimingModel,
    order: Tuple[str, ...],
    predecessors,
) -> Dict[str, Tuple[int, float]]:
    """Generic chaining-aware longest-path pass.

    Returns node → ``(start_step, finish_offset_ns)`` where ``finish_offset``
    is the accumulated combinational delay inside the node's final step
    (``_FULL_STEP`` when nothing may chain after it).
    """
    period = timing.clock_period_ns
    times: Dict[str, Tuple[int, float]] = {}
    for name in order:
        node = dfg.node(name)
        latency = timing.latency(node.kind)
        delay = timing.delay_ns(node.kind)
        timing.check_kind_fits_clock(node.kind)
        start_step = 1
        start_offset = 0.0
        for pred in predecessors(name):
            pred_node = dfg.node(pred)
            pred_start, pred_finish_offset = times[pred]
            pred_end_step = pred_start + timing.latency(pred_node.kind) - 1
            if (
                timing.chaining
                and latency == 1
                and pred_finish_offset != _FULL_STEP
                and pred_finish_offset + delay <= period
            ):
                cand_step, cand_offset = pred_end_step, pred_finish_offset
            else:
                cand_step, cand_offset = pred_end_step + 1, 0.0
            if (cand_step, cand_offset) > (start_step, start_offset):
                start_step, start_offset = cand_step, cand_offset
        if timing.chaining and latency == 1:
            finish_offset = start_offset + delay
        else:
            finish_offset = _FULL_STEP
        times[name] = (start_step, finish_offset)
    return times


def asap_schedule(dfg: DFG, timing: TimingModel) -> Dict[str, int]:
    """As-soon-as-possible start steps (1-based), honouring chaining."""
    order = dfg.topological_order()
    times = _forward_times(dfg, timing, order, dfg.predecessors)
    return {name: step for name, (step, _offset) in times.items()}


def alap_schedule(dfg: DFG, timing: TimingModel, cs: int) -> Dict[str, int]:
    """As-late-as-possible start steps within ``cs`` control steps.

    Computed as a reverse ASAP pass (the chain-fit relation is symmetric),
    then mirrored.  Raises :class:`InfeasibleScheduleError` when the
    critical path does not fit in ``cs`` steps.
    """
    order = tuple(reversed(dfg.topological_order()))
    times = _forward_times(dfg, timing, order, dfg.successors)
    alap: Dict[str, int] = {}
    for name, (reverse_start, _offset) in times.items():
        latency = timing.latency(dfg.node(name).kind)
        start = cs - (reverse_start - 1) - (latency - 1)
        if start < 1:
            raise InfeasibleScheduleError(
                f"DFG {dfg.name!r} needs more than {cs} control steps "
                f"(node {name!r} would start at step {start})"
            )
        alap[name] = start
    return alap


def critical_path_length(dfg: DFG, timing: TimingModel) -> int:
    """Minimum number of control steps any schedule needs."""
    if len(dfg) == 0:
        return 0
    asap = asap_schedule(dfg, timing)
    return max(
        asap[name] + timing.latency(dfg.node(name).kind) - 1 for name in asap
    )


def mobilities(
    asap: Mapping[str, int], alap: Mapping[str, int]
) -> Dict[str, int]:
    """Per-operation mobility ``ALAP − ASAP`` (§3.2, Step 2)."""
    return {name: alap[name] - asap[name] for name in asap}


def active_steps(start: int, latency: int) -> range:
    """Control steps a node occupies given its start step and latency."""
    return range(start, start + latency)


def type_concurrency(
    dfg: DFG,
    schedule: Mapping[str, int],
    timing: TimingModel,
    latency_l: Optional[int] = None,
    pipelined_kinds: frozenset = frozenset(),
) -> Dict[str, int]:
    """FUs of each kind needed by ``schedule``.

    Honours multi-cycle occupancy, mutual exclusion (§5.1: exclusive
    operations share a unit), structurally pipelined kinds (§5.5.1: a
    pipelined FU accepts a new operation every step, so only the start step
    counts as occupancy) and, when ``latency_l`` is given, functional
    pipelining (§5.5.2: steps ``t`` and ``t + k·L`` share resources).

    Mutually exclusive operations are packed into units greedily (first
    fit), matching what the placement grid does during scheduling.
    """
    by_kind_step: Dict[str, Dict[int, List[str]]] = {}
    for name, start in schedule.items():
        node = dfg.node(name)
        occupancy = 1 if node.kind in pipelined_kinds else timing.latency(node.kind)
        for step in active_steps(start, occupancy):
            folded = ((step - 1) % latency_l) + 1 if latency_l else step
            by_kind_step.setdefault(node.kind, {}).setdefault(folded, []).append(name)

    # Without branch annotations no pair is mutually exclusive: every
    # member gets its own unit and the packing loop below degenerates to
    # ``len(members)``.  Skipping it drops the quadratic pair checks from
    # the (hot) unconditional-DFG path.
    exclusion_possible = any(
        dfg.node(name).branch for name in schedule
    )
    needed: Dict[str, int] = {}
    for kind, steps in by_kind_step.items():
        best = 0
        for members in steps.values():
            if not exclusion_possible:
                best = max(best, len(members))
                continue
            units: List[List[str]] = []
            for member in members:
                for unit in units:
                    if all(dfg.mutually_exclusive(member, other) for other in unit):
                        unit.append(member)
                        break
                else:
                    units.append([member])
            best = max(best, len(units))
        needed[kind] = best
    return needed


def schedule_makespan(
    dfg: DFG, schedule: Mapping[str, int], timing: TimingModel
) -> int:
    """Last occupied control step of ``schedule``."""
    if not schedule:
        return 0
    return max(
        schedule[name] + timing.latency(dfg.node(name).kind) - 1
        for name in schedule
    )
