"""Pipelining transforms (§5.5).

Structural pipelining (§5.5.1)
------------------------------
Two equivalent mechanisms are provided:

* the **native mechanism** — pass ``pipelined_kinds`` to the schedulers:
  the placement grid then books a pipelined FU only at an operation's
  start step, so the unit accepts a new operation every cycle;
* the **paper's transform** — :func:`expand_structural_pipeline` splits a
  k-cycle operation into k chained single-cycle *stage* operations of
  distinct kinds ("different operations represent different stages of a
  multi-stage pipelined functional unit").  A post-check,
  :func:`check_stage_contiguity`, verifies the stages landed in
  consecutive control steps.

Functional pipelining (§5.5.2)
------------------------------
* the **native mechanism** — pass ``latency_l`` to the schedulers: grid
  occupancy folds modulo ``L`` so steps ``t`` and ``t + k·L`` share
  hardware;
* :func:`unfold_two_instances` builds the paper's ``DFGdouble`` (two
  renamed loop iterations) and :func:`partition_double` splits it at
  ``⌈(cs+L)/2⌉`` per the five-step procedure;
* :func:`overlap_report` shows, for a folded schedule, which iterations
  overlap in each physical step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.dfg.graph import DFG, Port
from repro.dfg.ops import OperationSet, OpSpec
from repro.dfg.analysis import TimingModel, asap_schedule
from repro.schedule.types import Schedule


# ----------------------------------------------------------------------
# structural pipelining (§5.5.1)
# ----------------------------------------------------------------------
def stage_kind(kind: str, stage: int) -> str:
    """Kind name of one pipeline stage of ``kind``."""
    return f"{kind}.s{stage}"


def expand_structural_pipeline(
    dfg: DFG, ops: OperationSet, kinds: Tuple[str, ...]
) -> Tuple[DFG, OperationSet]:
    """The paper's §5.5.1 transform: k-cycle ops become k stage ops.

    Stage 1 performs the computation; stages 2…k are pass-throughs of
    distinct kinds, chained in sequence.  Returns the transformed DFG and
    an operation set extended with the stage specs (all 1-cycle).
    """
    pipelined = {str(k) for k in kinds}
    extended = ops.copy()
    for kind in pipelined:
        spec = ops.spec(kind)
        if spec.latency < 2:
            raise ScheduleError(
                f"kind {kind!r} has latency {spec.latency}; only multi-cycle "
                f"operations can be structurally pipelined"
            )
        for stage in range(1, spec.latency + 1):
            if stage == 1:
                evaluate = spec.evaluate
                arity = spec.arity
            else:
                evaluate = lambda a: a  # noqa: E731 - pass-through stage
                arity = 1
            extended.register(
                OpSpec(
                    kind=stage_kind(kind, stage),
                    latency=1,
                    delay_ns=spec.delay_ns / spec.latency,
                    commutative=spec.commutative if stage == 1 else False,
                    arity=arity,
                    symbol=spec.symbol,
                    evaluate=evaluate,
                )
            )

    clone = DFG(f"{dfg.name}.structpipe")
    for input_name in dfg.inputs:
        clone.add_input(input_name)
    last_stage_of: Dict[str, str] = {}

    def resolve(port: Port) -> Port:
        if port.is_node and port.name in last_stage_of:
            return Port.node(last_stage_of[port.name])
        return port

    for node in dfg:
        operands = tuple(resolve(p) for p in node.operands)
        if node.kind in pipelined:
            latency = ops.spec(node.kind).latency
            previous = clone.add_op(
                stage_kind(node.kind, 1),
                operands,
                name=f"{node.name}.s1",
                branch=node.branch,
            )
            for stage in range(2, latency + 1):
                previous = clone.add_op(
                    stage_kind(node.kind, stage),
                    [previous],
                    name=f"{node.name}.s{stage}",
                    branch=node.branch,
                )
            last_stage_of[node.name] = f"{node.name}.s{latency}"
        else:
            clone.add_op(node.kind, operands, name=node.name, branch=node.branch)
    for out_name, port in dfg.outputs.items():
        clone.set_output(out_name, resolve(port))
    return clone, extended


def check_stage_contiguity(schedule: Schedule) -> None:
    """Verify expanded pipeline stages sit in consecutive steps (§5.5.1:
    "must be scheduled in consecutive control steps")."""
    starts = schedule.starts
    for name in starts:
        if ".s" not in name:
            continue
        base, _dot, stage_label = name.rpartition(".s")
        stage = int(stage_label)
        if stage < 2:
            continue
        previous = f"{base}.s{stage - 1}"
        if starts[name] != starts[previous] + 1:
            raise ScheduleError(
                f"pipeline stages {previous!r}@{starts[previous]} and "
                f"{name!r}@{starts[name]} are not in consecutive steps"
            )


# ----------------------------------------------------------------------
# functional pipelining (§5.5.2)
# ----------------------------------------------------------------------
def unfold_two_instances(dfg: DFG) -> DFG:
    """Build ``DFGdouble``: two renamed instances of the loop body.

    The instances are data-independent (they model consecutive loop
    iterations); the ``L``-cycle offset between them is a scheduling
    constraint, not a data edge.
    """
    first = dfg.renamed("i1_")
    second = dfg.renamed("i2_")
    double = DFG(f"{dfg.name}.double")
    for input_name in first.inputs:
        double.add_input(input_name)
    for instance in (first, second):
        for node in instance:
            double.add_op(
                node.kind, node.operands, name=node.name, branch=node.branch
            )
    for out_name, port in first.outputs.items():
        double.set_output(f"i1_{out_name}", port)
    for out_name, port in second.outputs.items():
        double.set_output(f"i2_{out_name}", port)
    return double


@dataclass
class DoublePartition:
    """§5.5.2 step 2: the two halves of ``DFGdouble``."""

    boundary: int
    first: Tuple[str, ...]
    second: Tuple[str, ...]


def partition_double(
    double: DFG,
    timing: TimingModel,
    cs: int,
    latency: int,
    instance2_offset: Optional[int] = None,
) -> DoublePartition:
    """Split ``DFGdouble`` at ``⌈(cs + L) / 2⌉`` by (offset) ASAP steps.

    Instance-2 operations are shifted by ``L`` (they enter the pipe one
    initiation later) before comparing against the boundary.
    """
    offset = latency if instance2_offset is None else instance2_offset
    asap = asap_schedule(double, timing)
    boundary = -(-(cs + latency) // 2)
    first: List[str] = []
    second: List[str] = []
    for name in double.node_names():
        step = asap[name] + (offset if name.startswith("i2_") else 0)
        (first if step <= boundary else second).append(name)
    return DoublePartition(
        boundary=boundary, first=tuple(first), second=tuple(second)
    )


@dataclass
class OverlapReport:
    """Which loop iterations are active in each physical step of a
    functionally pipelined schedule."""

    latency: int
    cs: int
    per_step: Dict[int, List[Tuple[int, str]]]

    def max_overlap(self) -> int:
        """Largest number of concurrently active iterations."""
        best = 0
        for members in self.per_step.values():
            iterations = {iteration for iteration, _name in members}
            best = max(best, len(iterations))
        return best


@dataclass
class TwoInstanceResult:
    """§5.5.2 end-to-end result.

    ``iteration`` is the folded single-iteration schedule; ``double`` is
    the explicit two-instance schedule over ``cs + L`` steps (instance 2
    shifted by ``L``), which proves the fold: both instances are
    identical, every dependence holds, and the per-step FU demand of the
    double schedule equals the folded accounting.
    """

    iteration: Schedule
    double: Schedule
    partition: "DoublePartition"
    latency: int


def two_instance_schedule(
    dfg: DFG,
    timing: TimingModel,
    cs: int,
    latency: int,
    **mfs_kwargs,
) -> TwoInstanceResult:
    """Run the §5.5.2 functional-pipelining procedure end to end.

    The constructive five-step text of the paper is realised through the
    equivalent modulo-``L`` resource accounting (DESIGN.md §4): MFS folds
    one iteration, then the two-instance schedule is materialised by
    overlapping two copies at offset ``L`` and fully validated — which is
    exactly the property steps 3–5 of the paper construct by hand.
    """
    from repro.core.mfs import MFSScheduler  # local import: avoids cycle

    result = MFSScheduler(
        dfg, timing, cs=cs, mode="time", latency_l=latency, **mfs_kwargs
    ).run()
    iteration = result.schedule

    double = unfold_two_instances(dfg)
    starts = {}
    for name, start in iteration.starts.items():
        starts[f"i1_{name}"] = start
        starts[f"i2_{name}"] = start + latency
    double_schedule = Schedule(
        dfg=double,
        timing=timing,
        cs=cs + latency,
        starts=starts,
        pipelined_kinds=iteration.pipelined_kinds,
    )
    double_schedule.validate()

    # The §5.5.2 guarantee: overlapped instances never demand more
    # hardware than the folded accounting promised.
    from repro.dfg.analysis import type_concurrency

    folded_usage = iteration.fu_usage()
    double_usage = type_concurrency(
        double,
        starts,
        timing,
        pipelined_kinds=iteration.pipelined_kinds,
    )
    for kind, used in double_usage.items():
        if used > folded_usage.get(kind, 0):
            raise ScheduleError(
                f"two-instance overlap of {dfg.name!r} needs {used} "
                f"{kind!r} units, folded accounting promised "
                f"{folded_usage.get(kind, 0)}"
            )

    partition = partition_double(double, timing, cs, latency)
    return TwoInstanceResult(
        iteration=iteration,
        double=double_schedule,
        partition=partition,
        latency=latency,
    )


def minimum_initiation_interval(
    dfg: DFG,
    timing: TimingModel,
    cs: int,
    resource_bounds: Optional[Dict[str, int]] = None,
    pipelined_kinds: Tuple[str, ...] = (),
) -> Tuple[int, Schedule]:
    """Smallest feasible functional-pipelining latency ``L`` (§5.5.2).

    Searches L = 1 … cs with MFS; ``resource_bounds`` (optional) caps the
    hardware the folded schedule may use.  Returns ``(L, schedule)`` of
    the fastest feasible initiation interval.

    Raises :class:`ScheduleError` when even L = cs (no overlap) fails —
    only possible with unsatisfiable resource bounds.
    """
    from repro.core.mfs import MFSScheduler  # local import: avoids cycle

    last_error: Optional[Exception] = None
    for latency in range(1, cs + 1):
        if any(
            timing.latency(kind) > latency and kind not in pipelined_kinds
            for kind in dfg.kinds_used()
        ):
            continue  # a non-pipelined multi-cycle op cannot fold this tight
        try:
            result = MFSScheduler(
                dfg,
                timing,
                cs=cs,
                mode="time",
                latency_l=latency,
                pipelined_kinds=pipelined_kinds,
                resource_bounds=resource_bounds,
            ).run()
        except ScheduleError as error:
            last_error = error
            continue
        return latency, result.schedule
    raise ScheduleError(
        f"no feasible initiation interval up to L={cs} for {dfg.name!r}"
    ) from last_error


def overlap_report(schedule: Schedule) -> OverlapReport:
    """Analyse a folded (``latency_l``) schedule's iteration overlap."""
    if not schedule.latency_l:
        raise ScheduleError("schedule is not functionally pipelined")
    latency = schedule.latency_l
    per_step: Dict[int, List[Tuple[int, str]]] = {}
    for name, start in schedule.starts.items():
        node_latency = schedule.timing.latency(schedule.dfg.node(name).kind)
        for step in range(start, start + node_latency):
            folded = ((step - 1) % latency) + 1
            iteration = (step - 1) // latency
            per_step.setdefault(folded, []).append((iteration, name))
    return OverlapReport(latency=latency, cs=schedule.cs, per_step=per_step)
