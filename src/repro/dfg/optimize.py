"""Classic pre-scheduling DFG optimisations.

These companions of the §5 transforms shrink or reshape the graph before
scheduling:

* :func:`constant_fold` — evaluate operations whose operands are all
  literals;
* :func:`eliminate_dead_code` — drop operations whose value can never
  reach a primary output;
* :func:`balance_tree` — tree-height reduction: re-associate chains of
  the same commutative operation into balanced trees, shortening the
  critical path (and thereby the reachable time constraints).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.dfg.graph import DFG, Port
from repro.dfg.ops import OperationSet


def constant_fold(dfg: DFG, ops: OperationSet) -> DFG:
    """Evaluate constant-operand operations at compile time.

    Branch-tagged operations fold too (their value does not depend on the
    branch).  Runs in one topological pass, so chains of constants
    collapse completely.
    """
    folded_value: Dict[str, int] = {}

    def resolve(port: Port) -> Port:
        if port.is_node and port.name in folded_value:
            return Port.const(folded_value[port.name])
        return port

    clone = DFG(dfg.name)
    for input_name in dfg.inputs:
        clone.add_input(input_name)
    for name in dfg.topological_order():
        node = dfg.node(name)
        operands = tuple(resolve(p) for p in node.operands)
        if all(p.is_const for p in operands):
            spec = ops.spec(node.kind)
            folded_value[name] = spec.evaluate(*(p.value for p in operands))
            continue
        clone.add_op(node.kind, operands, name=name, branch=node.branch)
    for out_name, port in dfg.outputs.items():
        clone.set_output(out_name, resolve(port))
    return clone


def eliminate_dead_code(dfg: DFG) -> DFG:
    """Remove operations that cannot reach any primary output."""
    live: Set[str] = set()
    stack: List[str] = [
        port.name for port in dfg.outputs.values() if port.is_node
    ]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(dfg.predecessors(name))

    clone = DFG(dfg.name)
    for input_name in dfg.inputs:
        clone.add_input(input_name)
    for name in dfg.topological_order():
        if name not in live:
            continue
        node = dfg.node(name)
        clone.add_op(node.kind, node.operands, name=name, branch=node.branch)
    for out_name, port in dfg.outputs.items():
        clone.set_output(out_name, port)
    return clone


def _chain_of(
    dfg: DFG, root: str, single_use: Set[str]
) -> Tuple[List[Port], List[str]]:
    """Leaves and interior nodes of the maximal same-kind, same-branch,
    single-consumer subtree rooted at ``root``."""
    root_node = dfg.node(root)
    leaves: List[Port] = []
    interior: List[str] = []

    def walk(name: str) -> None:
        for port in dfg.node(name).operands:
            if port.is_node:
                child = dfg.node(port.name)
                if (
                    child.kind == root_node.kind
                    and port.name in single_use
                    and child.branch == root_node.branch
                ):
                    interior.append(port.name)
                    walk(port.name)
                    continue
            leaves.append(port)

    walk(root)
    return leaves, interior


def balance_tree(dfg: DFG, ops: OperationSet) -> DFG:
    """Tree-height reduction over commutative/associative chains.

    Chains like ``(((a+b)+c)+d)`` become balanced trees
    ``(a+b)+(c+d)``.  Only single-consumer interior nodes re-associate
    (re-associating a shared value would duplicate work), and only within
    one branch context.  Associativity is assumed for the commutative
    kinds (true for the integer semantics of this library's operation
    set).
    """
    consumers: Dict[str, int] = {}
    for node in dfg:
        for pred in node.predecessor_names():
            consumers[pred] = consumers.get(pred, 0) + 1
    for port in dfg.outputs.values():
        if port.is_node:
            consumers[port.name] = consumers.get(port.name, 0) + 1
    single_use = {name for name, count in consumers.items() if count == 1}

    # Pass 1 (top-down): pick chain roots and their interior nodes.
    chain_leaves: Dict[str, List[Port]] = {}
    interior_nodes: Set[str] = set()
    for name in reversed(dfg.topological_order()):
        if name in interior_nodes:
            continue
        node = dfg.node(name)
        if node.kind not in ops:
            continue
        spec = ops.spec(node.kind)
        if not spec.commutative or spec.arity != 2:
            continue
        leaves, interior = _chain_of(dfg, name, single_use)
        if len(leaves) > 2:
            chain_leaves[name] = leaves
            interior_nodes.update(interior)

    # Pass 2 (bottom-up): rebuild, replacing each chain by a balanced tree.
    clone = DFG(dfg.name)
    for input_name in dfg.inputs:
        clone.add_input(input_name)
    rebuilt: Dict[str, Port] = {}

    def resolve(port: Port) -> Port:
        if port.is_node:
            return rebuilt[port.name]
        return port

    for name in dfg.topological_order():
        if name in interior_nodes:
            continue
        node = dfg.node(name)
        if name in chain_leaves:
            level = [resolve(p) for p in chain_leaves[name]]
            counter = 0
            while len(level) > 2:
                next_level = []
                for index in range(0, len(level) - 1, 2):
                    next_level.append(
                        clone.add_op(
                            node.kind,
                            [level[index], level[index + 1]],
                            name=f"{name}.b{counter}",
                            branch=node.branch,
                        )
                    )
                    counter += 1
                if len(level) % 2:
                    next_level.append(level[-1])
                level = next_level
            # the root keeps its original name so outputs stay stable
            rebuilt[name] = clone.add_op(
                node.kind, level, name=name, branch=node.branch
            )
            continue
        rebuilt[name] = clone.add_op(
            node.kind,
            tuple(resolve(p) for p in node.operands),
            name=name,
            branch=node.branch,
        )

    for out_name, port in dfg.outputs.items():
        clone.set_output(out_name, resolve(port) if port.is_node else port)
    return clone
