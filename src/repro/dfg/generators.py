"""Random / synthetic DFG generation for property tests and benchmarks.

:func:`random_dfg` produces layered random graphs with controllable size,
kind mix and fan-in locality — the workload generator behind the property
tests and the scalability benchmarks.  All randomness flows through an
explicit :class:`random.Random` seed, so every generated workload is
reproducible — *across processes*: no choice may depend on the ambient
global RNG or on set/dict iteration order (which varies with
``PYTHONHASHSEED``).  :func:`_normalized_kinds` is where that contract
is enforced for the one caller-supplied collection: an unordered
``kinds`` argument (a set) is sorted before any draw, so the same seed
produces the same graph — and the same canonical fingerprint — in every
interpreter (locked down by the subprocess test in
``tests/dfg/test_generators.py``).

The richer, spec-driven scenario generator
(:mod:`repro.scenarios.generator`) builds on the same discipline.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dfg.graph import DFG, Port
from repro.dfg.ops import OpKind


DEFAULT_KINDS: Tuple[str, ...] = (
    OpKind.ADD,
    OpKind.SUB,
    OpKind.MUL,
    OpKind.AND,
    OpKind.OR,
    OpKind.LT,
)


def _normalized_kinds(kinds) -> Tuple[str, ...]:
    """Deterministic draw order for a caller-supplied kind collection.

    Sequences keep their given order (first occurrence wins); unordered
    collections (sets, dict views) are *sorted*, because iterating them
    directly would make the generated graph depend on the process's hash
    seed.  Kinds are normalised to plain strings so enum members and
    their mnemonic spellings behave identically.
    """
    names = [str(kind) for kind in kinds]
    if isinstance(kinds, (set, frozenset)) or not isinstance(
        kinds, (list, tuple)
    ):
        names = sorted(set(names))
    else:
        names = list(dict.fromkeys(names))
    if not names:
        raise ValueError("kinds must name at least one operation kind")
    return tuple(names)


def random_dfg(
    seed: int,
    n_ops: int = 20,
    n_inputs: int = 4,
    kinds: Sequence[str] = DEFAULT_KINDS,
    locality: int = 6,
    output_fraction: float = 0.3,
    name: Optional[str] = None,
) -> DFG:
    """Generate a random acyclic DFG.

    Parameters
    ----------
    seed:
        PRNG seed; equal seeds give identical graphs.
    n_ops:
        Number of operation nodes (>= 1).
    n_inputs:
        Number of primary inputs (>= 1).
    kinds:
        Operation kinds to draw from (all binary kinds).
    locality:
        Operands are drawn from the ``locality`` most recent values, which
        controls graph depth: small values give deep chains, large values
        give wide parallel graphs.
    output_fraction:
        Fraction of sink values exposed as primary outputs (at least one).
    """
    rng = random.Random(seed)
    kind_names = _normalized_kinds(kinds)
    dfg = DFG(name or f"random_{seed}")
    pool: List[Port] = []
    for index in range(max(1, n_inputs)):
        pool.append(dfg.add_input(f"in{index}"))

    for index in range(max(1, n_ops)):
        kind = rng.choice(kind_names)
        window = pool[-max(1, locality):]
        left = rng.choice(window)
        right = rng.choice(window)
        pool.append(dfg.add_op(kind, [left, right], name=f"op{index}"))

    sinks = dfg.sink_nodes()
    keep = max(1, int(len(sinks) * output_fraction))
    for out_index, sink in enumerate(sinks[:keep]):
        dfg.set_output(f"out{out_index}", Port.node(sink))
    return dfg


def random_conditional_dfg(
    seed: int,
    n_ops: int = 16,
    n_inputs: int = 4,
    kinds: Sequence[str] = DEFAULT_KINDS,
    name: Optional[str] = None,
) -> DFG:
    """Random DFG with one if/else region for mutual-exclusion tests.

    Roughly the middle half of the operations are split between the two
    arms of a single condition; the rest are unconditional.
    """
    rng = random.Random(seed)
    kind_names = _normalized_kinds(kinds)
    dfg = DFG(name or f"random_cond_{seed}")
    pool: List[Port] = []
    for index in range(max(1, n_inputs)):
        pool.append(dfg.add_input(f"in{index}"))

    quarter = max(1, n_ops // 4)
    arms = [()] * quarter
    arms += [(("c0", True),)] * quarter
    arms += [(("c0", False),)] * quarter
    arms += [()] * (n_ops - len(arms))

    # Values created inside an arm may only feed the same arm or the
    # unconditional tail (reading a then-value in the else-arm would be
    # reading a never-computed value).
    arm_of: Dict[str, Tuple] = {}
    for index, branch in enumerate(arms):
        kind = rng.choice(kind_names)
        candidates = [
            port
            for port in pool[-8:]
            if not port.is_node
            or arm_of.get(port.name, ()) in ((), branch)
        ]
        if not candidates:
            # The recent window may hold only other-arm values; inputs are
            # always safe sources.
            candidates = [Port.input(name) for name in dfg.inputs]
        left = rng.choice(candidates)
        right = rng.choice(candidates)
        port = dfg.add_op(kind, [left, right], name=f"op{index}", branch=branch)
        arm_of[f"op{index}"] = branch
        if branch == ():
            pool.append(port)
        # Arm-internal values participate with lower probability.
        elif rng.random() < 0.5:
            pool.append(port)

    sinks = dfg.sink_nodes()
    for out_index, sink in enumerate(sinks[: max(1, len(sinks) // 2)]):
        dfg.set_output(f"out{out_index}", Port.node(sink))
    return dfg


def layered_workload(
    seed: int,
    layers: int,
    width: int,
    kinds: Sequence[str] = (OpKind.MUL, OpKind.ADD),
    name: Optional[str] = None,
) -> DFG:
    """Regular layered workload (used by the scalability benchmarks).

    ``layers × width`` operations; each operation reads two values from
    the previous layer, so depth is exactly ``layers``.
    """
    rng = random.Random(seed)
    kinds = _normalized_kinds(kinds)
    dfg = DFG(name or f"layered_{layers}x{width}")
    previous: List[Port] = [
        dfg.add_input(f"in{index}") for index in range(max(2, width))
    ]
    for layer in range(layers):
        current: List[Port] = []
        for column in range(width):
            kind = kinds[(layer + column) % len(kinds)]
            left = rng.choice(previous)
            right = rng.choice(previous)
            current.append(
                dfg.add_op(kind, [left, right], name=f"l{layer}c{column}")
            )
        previous = current
    for out_index, port in enumerate(previous):
        dfg.set_output(f"out{out_index}", port)
    return dfg
