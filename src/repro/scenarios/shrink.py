"""Delta-debugging reducer: failing scenario → minimal DFG reproducer.

A failing matrix cell on a 200-op random graph is a terrible bug
report.  :func:`shrink_dfg` reduces any DFG against a *failing*
predicate with three greedy passes run to a fixpoint:

A. **drop cones** — remove a node together with its transitive
   successors (successor-closed removal keeps every remaining operand
   defined, so candidates are always structurally valid);
B. **rewire to inputs** — replace a node operand that reads another
   node with a primary input, flattening depth so pass A can bite again;
C. **trim the interface** — drop unused primary inputs and surplus
   outputs.

Each candidate is accepted only if the predicate still fails on it, so
the result provably reproduces the original failure; a predicate that
*raises* on a candidate counts as "does not reproduce" (the reduction
must never trade one failure for a different one).

:func:`shrink_scenario` wires this to the matrix runner: the predicate
is "re-run this scenario's scheduler + audit + synthetic defect on the
candidate graph and see it fail".  Reduced graphs are persisted as
corpus files (:func:`save_reproducer` / :func:`load_reproducer`) that
CI uploads next to the pass/fail grid.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dfg.fingerprint import dfg_fingerprint
from repro.dfg.graph import DFG, Port
from repro.io.jsonio import dfg_from_json, dfg_to_json

#: Corpus file format marker/version.
REPRODUCER_FORMAT = "repro-scenario-reproducer"
REPRODUCER_VERSION = 1


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one reduction run."""

    dfg: DFG
    original_ops: int
    original_fingerprint: str
    rounds: int
    scenario: Optional[Dict[str, Any]] = None
    violations: Tuple[str, ...] = ()

    @property
    def n_ops(self) -> int:
        return len(self.dfg)

    @property
    def fingerprint(self) -> str:
        return dfg_fingerprint(self.dfg)


# ---------------------------------------------------------------------------
# Structure-preserving graph surgery
# ---------------------------------------------------------------------------
def _rebuild(
    dfg: DFG,
    keep: Sequence[str],
    operand_overrides: Optional[Mapping[Tuple[str, int], Port]] = None,
) -> DFG:
    """Copy ``dfg`` keeping only ``keep`` nodes (insertion order).

    ``keep`` must be predecessor-closed modulo ``operand_overrides``
    (every surviving operand either survives too or is overridden).
    Outputs referencing dropped nodes are discarded; a graph left with
    no outputs exposes its first sink as ``out0`` so every candidate
    stays a schedulable design.
    """
    overrides = dict(operand_overrides or {})
    keep_set = set(keep)
    reduced = DFG(dfg.name)
    for name in dfg.inputs:
        reduced.add_input(name)
    for node in dfg:
        if node.name not in keep_set:
            continue
        operands = [
            overrides.get((node.name, index), port)
            for index, port in enumerate(node.operands)
        ]
        reduced.add_op(
            node.kind, operands, name=node.name, branch=node.branch
        )
    for out_name, port in dfg.outputs.items():
        if not port.is_node or port.name in keep_set:
            reduced.set_output(out_name, port)
    if not reduced.outputs and len(reduced):
        reduced.set_output("out0", Port.node(reduced.sink_nodes()[0]))
    return reduced


def _drop_unused_interface(dfg: DFG) -> DFG:
    """Remove unread primary inputs and keep a single primary output."""
    used = set()
    for node in dfg:
        for port in node.operands:
            if port.is_input:
                used.add(port.name)
    reduced = DFG(dfg.name)
    for name in dfg.inputs:
        if name in used:
            reduced.add_input(name)
    for node in dfg:
        reduced.add_op(
            node.kind, node.operands, name=node.name, branch=node.branch
        )
    valid_outputs = [
        (out_name, port)
        for out_name, port in dfg.outputs.items()
        if port.is_const
        or (port.is_node and port.name in dfg)
        or (port.is_input and port.name in used)
    ]
    for out_name, port in valid_outputs[:1]:
        reduced.set_output(out_name, port)
    if not reduced.outputs and len(reduced):
        reduced.set_output("out0", Port.node(reduced.sink_nodes()[0]))
    return reduced


def _still_fails(failing: Callable[[DFG], bool], candidate: DFG) -> bool:
    if len(candidate) == 0:
        return False
    try:
        return bool(failing(candidate))
    except Exception:
        # A candidate that makes the *predicate* blow up is a different
        # failure — never accept it as a reduction step.
        return False


def shrink_dfg(
    dfg: DFG,
    failing: Callable[[DFG], bool],
    max_rounds: int = 32,
) -> ShrinkResult:
    """Greedily reduce ``dfg`` while ``failing`` keeps returning True.

    ``failing(dfg)`` must be True on entry (nothing to reproduce
    otherwise — raises ``ValueError``).  Deterministic: candidates are
    tried in a fixed order, so the same (graph, predicate) always
    shrinks to the same reproducer.
    """
    if not _still_fails(failing, dfg):
        raise ValueError("shrink_dfg needs a DFG on which `failing` is True")
    original_ops = len(dfg)
    original_fingerprint = dfg_fingerprint(dfg)

    current = dfg
    rounds = 0
    changed = True
    while changed and rounds < max_rounds:
        changed = False
        rounds += 1

        # Pass A: drop whole cones, latest nodes first (a late node's
        # cone is small, so this peels sinks before attacking the core).
        for name in reversed(current.node_names()):
            if name not in current:  # pragma: no cover - defensive
                continue
            drop = {name} | current.transitive_successors(name)
            if len(drop) >= len(current):
                continue
            keep = [n for n in current.node_names() if n not in drop]
            candidate = _rebuild(current, keep)
            if _still_fails(failing, candidate):
                current = candidate
                changed = True

        # Pass B: cut depth by rewiring node-reading operands to the
        # first primary input; unlocks more pass-A cone drops.
        anchor = (
            Port.input(current.inputs[0]) if current.inputs else Port.const(1)
        )
        for name in current.node_names():
            node = current.node(name)
            for index, port in enumerate(node.operands):
                if not port.is_node:
                    continue
                candidate = _rebuild(
                    current,
                    current.node_names(),
                    operand_overrides={(name, index): anchor},
                )
                if _still_fails(failing, candidate):
                    current = candidate
                    changed = True

        # Pass C: shed interface baggage.
        candidate = _drop_unused_interface(current)
        if (
            len(candidate.inputs) < len(current.inputs)
            or len(candidate.outputs) < len(current.outputs)
        ) and _still_fails(failing, candidate):
            current = candidate
            changed = True

    return ShrinkResult(
        dfg=current,
        original_ops=original_ops,
        original_fingerprint=original_fingerprint,
        rounds=rounds,
    )


# ---------------------------------------------------------------------------
# Scenario-level entry point
# ---------------------------------------------------------------------------
def _scenario_violations(
    scenario: Mapping[str, Any], dfg: DFG
) -> List[str]:
    from repro.scenarios.matrix import run_scenario

    return list(run_scenario(scenario, dfg=dfg)["violations"])


def shrink_scenario(
    scenario: Mapping[str, Any],
    dfg: Optional[DFG] = None,
    max_rounds: int = 32,
) -> ShrinkResult:
    """Shrink one failing matrix scenario to a minimal reproducer.

    Re-generates the scenario's DFG (unless ``dfg`` is given), then
    reduces it under the predicate "this scenario's scheduler + audit +
    synthetic defect still reports violations on the candidate".
    """
    from repro.scenarios.generator import generate_dfg, parse_generator_spec

    if dfg is None:
        spec = parse_generator_spec(scenario["generator"])
        dfg = generate_dfg(spec, scenario["seed"])

    def failing(candidate: DFG) -> bool:
        return bool(_scenario_violations(scenario, candidate))

    result = shrink_dfg(dfg, failing, max_rounds=max_rounds)
    return ShrinkResult(
        dfg=result.dfg,
        original_ops=result.original_ops,
        original_fingerprint=result.original_fingerprint,
        rounds=result.rounds,
        scenario=dict(scenario),
        violations=tuple(_scenario_violations(scenario, result.dfg)),
    )


# ---------------------------------------------------------------------------
# Corpus files
# ---------------------------------------------------------------------------
def save_reproducer(result: ShrinkResult, path: str) -> Dict[str, Any]:
    """Persist a shrunk reproducer as a corpus JSON file."""
    payload = {
        "format": REPRODUCER_FORMAT,
        "version": REPRODUCER_VERSION,
        "scenario": result.scenario,
        "original": {
            "n_ops": result.original_ops,
            "fingerprint": result.original_fingerprint,
        },
        "reduced": {
            "n_ops": result.n_ops,
            "fingerprint": result.fingerprint,
            "rounds": result.rounds,
            "violations": list(result.violations),
        },
        "dfg": json.loads(dfg_to_json(result.dfg)),
    }
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_reproducer(path: str) -> Tuple[Optional[Dict[str, Any]], DFG]:
    """Load a corpus file back into ``(scenario, dfg)``."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != REPRODUCER_FORMAT:
        raise ValueError(f"{path} is not a {REPRODUCER_FORMAT} file")
    dfg = dfg_from_json(json.dumps(payload["dfg"]))
    return payload.get("scenario"), dfg
