"""Traffic replay: seeded arrival processes × live serve × chaos.

:func:`run_replay` boots a real service — an in-thread
:class:`~repro.serve.app.ServeApp`, or a
:class:`~repro.serve.router.ShardRouter` fleet when ``shards > 0`` —
and drives it through :class:`~repro.serve.client.Client` with a
synthetic *arrival pattern* while an optional
:class:`~repro.resilience.faults.FaultPlan` fires inside the service.
Load and chaos in one run, with the latency/error/recovery picture
folded into a single :class:`ReplayReport`.

Arrival patterns use the same compact spelling as generator specs::

    poisson:n=40:rate=200        # exponential interarrivals
    burst:n=40:size=8:gap=0.05   # size-8 bursts, 50 ms apart
    ramp:n=40:rate=50:peak=400   # rate climbs linearly to the peak

Determinism contract: :func:`arrival_offsets` is a pure function of
``(pattern, seed)`` (string-seeded RNG, like the DFG generator).  Jobs
are submitted *closed-loop* by default (strictly one at a time, in
offset order), and count-triggered fault rules (``n=`` / ``every=``)
therefore fire at identical call indexes run after run — so
:attr:`ReplayReport.fault_log` and the per-job outcome sequence are
byte-identical across two replays of the same spec, which the scenario
tests assert.  Wall-clock latencies are measured and reported but kept
out of :meth:`ReplayReport.deterministic_payload`.

``open_loop=True`` instead submits at the arrival process's pace with
up to ``max_in_flight`` concurrent jobs — true load testing, and the
driver of the reshard-under-load drill.  Outcomes are recorded in
arrival-index order regardless of completion order, so
:meth:`ReplayReport.deterministic_payload` stays stable; fault-rule
call *indexes* may differ from the closed-loop run because concurrent
requests race to each site.

By default the replay rushes (no pacing — offsets order the jobs but
nobody sleeps); ``time_scale=1.0`` replays in real time, ``0.5`` at
double speed.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.dfg.fingerprint import sha256_of
from repro.io.jsonio import dfg_to_json
from repro.scenarios.generator import (
    GeneratorSpec,
    generate_dfg,
    parse_generator_spec,
)

#: Arrival families.
ARRIVALS = ("poisson", "burst", "ramp")


class ArrivalSpecError(ValueError):
    """An arrival-pattern spelling that cannot be realised."""


@dataclass(frozen=True)
class ArrivalPattern:
    """One seeded synthetic arrival process."""

    kind: str = "poisson"
    n: int = 20
    rate: float = 100.0
    size: int = 4
    gap: float = 0.05
    peak: float = 400.0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVALS:
            raise ArrivalSpecError(
                f"unknown arrival kind {self.kind!r} (expected {ARRIVALS})"
            )
        if self.n < 1:
            raise ArrivalSpecError("n must be >= 1")
        if self.rate <= 0 or self.peak <= 0:
            raise ArrivalSpecError("rates must be positive")
        if self.size < 1:
            raise ArrivalSpecError("size must be >= 1")
        if self.gap < 0:
            raise ArrivalSpecError("gap must be >= 0")

    def to_string(self) -> str:
        parts = [self.kind, f"n={self.n}"]
        if self.kind in ("poisson", "ramp"):
            parts.append(f"rate={self.rate:g}")
        if self.kind == "burst":
            parts += [f"size={self.size}", f"gap={self.gap:g}"]
        if self.kind == "ramp":
            parts.append(f"peak={self.peak:g}")
        return ":".join(parts)


def parse_arrival_spec(text: str) -> ArrivalPattern:
    """Parse ``kind:key=value:...`` into an :class:`ArrivalPattern`."""
    chunks = [c.strip() for c in str(text).split(":") if c.strip()]
    if not chunks:
        raise ArrivalSpecError("empty arrival spec")
    fields: Dict[str, Any] = {"kind": chunks[0]}
    casts = {
        "n": int,
        "rate": float,
        "size": int,
        "gap": float,
        "peak": float,
    }
    for chunk in chunks[1:]:
        key, sep, value = chunk.partition("=")
        key = key.strip()
        if not sep or key not in casts:
            raise ArrivalSpecError(
                f"malformed arrival clause {chunk!r} "
                f"(expected one of {', '.join(sorted(casts))})"
            )
        try:
            fields[key] = casts[key](value)
        except ValueError:
            raise ArrivalSpecError(
                f"{key!r} must be a {casts[key].__name__}, got {value!r}"
            ) from None
    return ArrivalPattern(**fields)


def arrival_offsets(pattern: ArrivalPattern, seed: int) -> List[float]:
    """Seconds-from-start submission offsets — pure in ``(pattern, seed)``."""
    rng = random.Random(f"repro-replay:{pattern.to_string()}:{int(seed)}")
    offsets: List[float] = []
    clock = 0.0
    if pattern.kind == "poisson":
        for _ in range(pattern.n):
            clock += rng.expovariate(pattern.rate)
            offsets.append(clock)
    elif pattern.kind == "burst":
        index = 0
        while len(offsets) < pattern.n:
            jitter = rng.random() * pattern.gap * 0.1
            offsets.extend(
                [index * pattern.gap + jitter]
                * min(pattern.size, pattern.n - len(offsets))
            )
            index += 1
    else:  # ramp
        for index in range(pattern.n):
            rate = pattern.rate + (pattern.peak - pattern.rate) * (
                index / max(1, pattern.n - 1)
            )
            clock += rng.expovariate(rate)
            offsets.append(clock)
    return offsets


def _result_fingerprint(result: Mapping[str, Any]) -> str:
    """Content address of the deterministic part of one job response."""
    return sha256_of(
        {
            "design": result.get("design"),
            "cs": result.get("cs"),
            "result": result.get("result"),
        }
    )[:16]


# ---------------------------------------------------------------------------
# The replay itself
# ---------------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Everything one replay run observed."""

    pattern: str
    seed: int
    shards: int
    algorithm: str
    #: ``"closed"`` (one at a time) or ``"open"`` (concurrent arrivals).
    mode: str = "closed"
    jobs: int = 0
    ok: int = 0
    recovered: int = 0
    errors: int = 0
    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    latencies_ms: List[float] = field(default_factory=list)
    fault_log: List[Tuple[str, int]] = field(default_factory=list)
    wall_seconds: float = 0.0

    def latency_summary_ms(self) -> Dict[str, float]:
        if not self.latencies_ms:
            return {"p50": 0.0, "p95": 0.0, "max": 0.0}
        ordered = sorted(self.latencies_ms)
        return {
            "p50": ordered[len(ordered) // 2],
            "p95": ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))],
            "max": ordered[-1],
        }

    def deterministic_payload(self) -> Dict[str, Any]:
        """The replay facts that must match run for run (no wall clock)."""
        return {
            "format": "repro-scenario-replay",
            "pattern": self.pattern,
            "seed": self.seed,
            "shards": self.shards,
            "algorithm": self.algorithm,
            "mode": self.mode,
            "jobs": self.jobs,
            "ok": self.ok,
            "recovered": self.recovered,
            "errors": self.errors,
            "statuses": [outcome["status"] for outcome in self.outcomes],
            "fingerprints": [
                outcome.get("fingerprint") for outcome in self.outcomes
            ],
            "fault_log": [list(entry) for entry in self.fault_log],
        }

    def render(self) -> str:
        latency = self.latency_summary_ms()
        lines = [
            f"replay {self.pattern} seed={self.seed} "
            + (f"shards={self.shards}" if self.shards else "single")
            + (" open-loop" if self.mode == "open" else ""),
            f"  jobs={self.jobs} ok={self.ok} recovered={self.recovered} "
            f"errors={self.errors}",
            f"  latency ms: p50={latency['p50']:.1f} "
            f"p95={latency['p95']:.1f} max={latency['max']:.1f}",
            f"  faults fired: {len(self.fault_log)} "
            f"{[f'{site}#{idx}' for site, idx in self.fault_log]}",
            f"  wall: {self.wall_seconds:.2f}s",
        ]
        return "\n".join(lines)


def _design_payloads(
    spec: GeneratorSpec, seed: int, count: int, distinct: int
) -> List[Dict[str, Any]]:
    """``count`` request bodies drawn from ``distinct`` seeded designs.

    Reusing designs round-robin exercises the service's result cache
    and single-flight dedup alongside the cold-path scheduling.
    """
    distinct = max(1, min(distinct, count))
    designs = [
        json.loads(dfg_to_json(generate_dfg(spec, seed + index)))
        for index in range(distinct)
    ]
    return [designs[index % distinct] for index in range(count)]


def run_replay(
    pattern: ArrivalPattern,
    seed: int,
    generator: str = "random:ops=12",
    algorithm: str = "schedule",
    shards: int = 0,
    faults: Optional[str] = None,
    fault_seed: int = 0,
    distinct_designs: int = 6,
    time_scale: float = 0.0,
    serial: bool = True,
    open_loop: bool = False,
    max_in_flight: int = 8,
    actions: Optional[Mapping[int, Any]] = None,
) -> ReplayReport:
    """Drive a live service with seeded traffic while faults fire.

    ``shards=0`` boots one in-thread :class:`ServeApp`; ``shards>=1``
    boots a :class:`ShardRouter` fleet (subprocess shards) with the
    fault plan armed at the router (``router.forward`` chaos).  Failed
    jobs are retried once through a fresh request — a success on retry
    counts as *recovered*, modelling the client-visible effect of the
    resilience layer.

    ``open_loop=True`` submits at the arrival pace with up to
    ``max_in_flight`` jobs concurrently in flight; outcomes are still
    recorded in arrival-index order.  ``actions`` maps an arrival index
    to a callable invoked with the live service object just before that
    submission — the hook the reshard-under-load drill uses to add and
    kill shards mid-replay.
    """
    from repro.serve.client import Client, JobFailedError, ServiceError

    spec = parse_generator_spec(generator)
    if algorithm not in ("schedule", "synth"):
        raise ValueError(
            f"algorithm must be 'schedule' or 'synth', got {algorithm!r}"
        )
    if max_in_flight < 1:
        raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
    offsets = arrival_offsets(pattern, seed)
    payloads = _design_payloads(spec, seed, pattern.n, distinct_designs)
    report = ReplayReport(
        pattern=pattern.to_string(),
        seed=seed,
        shards=shards,
        algorithm=algorithm,
        mode="open" if open_loop else "closed",
    )

    if shards > 0:
        from repro.serve.router import RouterConfig, ShardRouter

        service = ShardRouter(
            RouterConfig(
                port=0,
                shards=shards,
                faults=faults,
                fault_seed=fault_seed,
                shard_args=("--serial",) if serial else (),
            )
        )
        plan = service.fault_plan
    else:
        from repro.serve.app import ServeApp

        service = ServeApp(
            port=0,
            backend="serial" if serial else "auto",
            faults=faults,
            fault_seed=fault_seed,
        )
        plan = service.fault_plan

    started = time.perf_counter()
    with service.start_in_thread() as handle:
        client = Client(handle.url, timeout=60.0, retries=0)
        submit = client.schedule if algorithm == "schedule" else client.synth

        def run_one(
            index: int, offset: float, payload: Dict[str, Any]
        ) -> Tuple[Dict[str, Any], float]:
            outcome: Dict[str, Any] = {
                "index": index,
                "offset": round(offset, 6),
                "status": "ok",
            }
            job_started = time.perf_counter()
            try:
                result = submit(dfg=payload, mul_latency=spec.mul_latency)
                outcome["fingerprint"] = _result_fingerprint(result)
            except (ServiceError, JobFailedError, OSError) as error:
                try:  # one client-level retry: measures recovery
                    result = submit(dfg=payload, mul_latency=spec.mul_latency)
                    outcome["fingerprint"] = _result_fingerprint(result)
                    outcome["status"] = "recovered"
                    outcome["first_error"] = type(error).__name__
                except (ServiceError, JobFailedError, OSError) as retry_error:
                    outcome["status"] = "error"
                    outcome["error"] = (
                        f"{type(retry_error).__name__}: {retry_error}"
                    )
            return outcome, (time.perf_counter() - job_started) * 1000.0

        base = time.perf_counter()
        if open_loop:
            from concurrent.futures import ThreadPoolExecutor

            futures = []
            with ThreadPoolExecutor(max_workers=max_in_flight) as pool:
                for index, (offset, payload) in enumerate(
                    zip(offsets, payloads)
                ):
                    if actions and index in actions:
                        actions[index](service)
                    if time_scale > 0:
                        due = base + offset * time_scale
                        pause = due - time.perf_counter()
                        if pause > 0:
                            time.sleep(pause)
                    futures.append(
                        pool.submit(run_one, index, offset, payload)
                    )
                completed = [future.result() for future in futures]
            # Arrival-index order, not completion order: the
            # deterministic payload must not depend on thread timing.
            for outcome, latency in completed:
                report.outcomes.append(outcome)
                report.latencies_ms.append(latency)
        else:
            for index, (offset, payload) in enumerate(zip(offsets, payloads)):
                if actions and index in actions:
                    actions[index](service)
                if time_scale > 0:
                    due = base + offset * time_scale
                    pause = due - time.perf_counter()
                    if pause > 0:
                        time.sleep(pause)
                outcome, latency = run_one(index, offset, payload)
                report.outcomes.append(outcome)
                report.latencies_ms.append(latency)
        if plan is not None:
            report.fault_log = list(plan.log)
    report.wall_seconds = time.perf_counter() - started
    report.jobs = len(report.outcomes)
    report.ok = sum(1 for o in report.outcomes if o["status"] == "ok")
    report.recovered = sum(
        1 for o in report.outcomes if o["status"] == "recovered"
    )
    report.errors = sum(1 for o in report.outcomes if o["status"] == "error")
    return report
