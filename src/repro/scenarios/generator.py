"""Seeded, spec-driven DFG generation — the scenario engine's front end.

A *generator spec* is a compact, declarative description of a workload
family::

    random:ops=24:inputs=4:mix=mul*3+add+sub:cond=2:locality=6
    layered:layers=6:width=4:mix=mul+add
    random:ops=40:mul_latency=2:clock=20

``family:key=value:...`` — every knob the memory-aware HLS literature
motivates as a first-class generator parameter:

=============  ======================================================
``ops``        operation count (``random`` family)
``inputs``     primary input count
``mix``        weighted op mix, ``kind[*weight]+kind...`` (memory- vs
               ALU-pressure shaping: ``mul*4+add`` is multiplier-bound)
``locality``   fan-in window; small = deep chains, large = wide graphs
``cond``       number of independent if/else regions (mutual exclusion)
``outputs``    fraction of sink values exposed as primary outputs
``layers``     exact depth (``layered`` family)
``width``      ops per layer (``layered`` family)
``mul_latency``  multi-cycle multiplier/divider latency (timing knob)
``clock``      clock period in ns — enables operation chaining
=============  ======================================================

Determinism contract (the whole engine leans on it): a DFG is a pure
function of ``(spec, seed)``.  The RNG is seeded with the *canonical
string spelling* of the spec plus the seed — string seeding hashes the
bytes through SHA-512 inside :class:`random.Random`, so it is stable
across processes, platforms and ``PYTHONHASHSEED`` values, unlike
``hash()``-based seeding.  No generation choice may touch the ambient
global RNG or iterate a set/dict whose order is hash-dependent.  The
subprocess tests in ``tests/scenarios/`` pin this down by comparing
canonical fingerprints across interpreters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.dfg.analysis import TimingModel
from repro.dfg.fingerprint import sha256_of
from repro.dfg.graph import DFG, BranchPath, Port
from repro.dfg.ops import OperationSet, standard_operation_set

#: Generator families the engine knows how to expand.
FAMILIES = ("random", "layered")

#: Default weighted op mix (uniform over the classic six binary kinds).
DEFAULT_MIX: Tuple[Tuple[str, int], ...] = (
    ("add", 1),
    ("sub", 1),
    ("mul", 1),
    ("and", 1),
    ("or", 1),
    ("lt", 1),
)


class GeneratorSpecError(ValueError):
    """A generator spec string or field set that cannot be realised."""


@dataclass(frozen=True)
class GeneratorSpec:
    """One declarative workload family (see the module docstring).

    Instances are immutable and hashable; :meth:`to_string` produces the
    canonical spelling that seeds the RNG and fingerprints the spec.
    """

    family: str = "random"
    n_ops: int = 20
    n_inputs: int = 4
    mix: Tuple[Tuple[str, int], ...] = DEFAULT_MIX
    locality: int = 6
    conditions: int = 0
    output_fraction: float = 0.3
    layers: int = 0
    width: int = 0
    mul_latency: int = 1
    clock_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise GeneratorSpecError(
                f"unknown generator family {self.family!r} "
                f"(expected one of {FAMILIES})"
            )
        if self.family == "layered" and (self.layers < 1 or self.width < 1):
            raise GeneratorSpecError(
                "layered specs need layers>=1 and width>=1"
            )
        if self.family == "random" and self.n_ops < 1:
            raise GeneratorSpecError("ops must be >= 1")
        if self.n_inputs < 1:
            raise GeneratorSpecError("inputs must be >= 1")
        if self.locality < 1:
            raise GeneratorSpecError("locality must be >= 1")
        if self.conditions < 0:
            raise GeneratorSpecError("cond must be >= 0")
        if not 0.0 < self.output_fraction <= 1.0:
            raise GeneratorSpecError("outputs must be within (0, 1]")
        if self.mul_latency < 1:
            raise GeneratorSpecError("mul_latency must be >= 1")
        if self.clock_ns is not None and self.clock_ns <= 0:
            raise GeneratorSpecError("clock must be positive")
        if not self.mix:
            raise GeneratorSpecError("mix must name at least one kind")
        for kind, weight in self.mix:
            if weight < 1:
                raise GeneratorSpecError(
                    f"mix weight for {kind!r} must be >= 1, got {weight}"
                )

    # ------------------------------------------------------------------
    def total_ops(self) -> int:
        """Operation count of a generated instance."""
        if self.family == "layered":
            return self.layers * self.width
        return self.n_ops

    def to_string(self) -> str:
        """Canonical spec spelling (parse → to_string is a fixpoint)."""
        parts = [self.family]
        if self.family == "layered":
            parts += [f"layers={self.layers}", f"width={self.width}"]
        else:
            parts.append(f"ops={self.n_ops}")
        parts.append(f"inputs={self.n_inputs}")
        parts.append(
            "mix="
            + "+".join(
                kind if weight == 1 else f"{kind}*{weight}"
                for kind, weight in self.mix
            )
        )
        if self.family == "random":
            parts.append(f"locality={self.locality}")
        if self.conditions:
            parts.append(f"cond={self.conditions}")
        if self.output_fraction != 0.3:
            parts.append(f"outputs={self.output_fraction:g}")
        if self.mul_latency != 1:
            parts.append(f"mul_latency={self.mul_latency}")
        if self.clock_ns is not None:
            parts.append(f"clock={self.clock_ns:g}")
        return ":".join(parts)

    def canonical(self) -> Dict[str, object]:
        """JSON-shaped canonical form (what :func:`spec_fingerprint` hashes)."""
        return {
            "format": "repro-generator-spec",
            "spec": self.to_string(),
        }


def _parse_mix(text: str) -> Tuple[Tuple[str, int], ...]:
    mix: List[Tuple[str, int]] = []
    for chunk in filter(None, text.split("+")):
        kind, star, weight = chunk.partition("*")
        try:
            count = int(weight) if star else 1
        except ValueError:
            raise GeneratorSpecError(
                f"bad mix weight in {chunk!r} (expected kind*integer)"
            ) from None
        mix.append((kind.strip(), count))
    if not mix:
        raise GeneratorSpecError(f"empty op mix {text!r}")
    return tuple(mix)


def parse_generator_spec(text: str) -> GeneratorSpec:
    """Parse the compact ``family:key=value:...`` spelling.

    >>> parse_generator_spec("random:ops=8:mix=mul*2+add").n_ops
    8
    """
    chunks = [c.strip() for c in str(text).split(":") if c.strip()]
    if not chunks:
        raise GeneratorSpecError("empty generator spec")
    family = chunks[0]
    fields: Dict[str, object] = {"family": family}
    casts = {
        "ops": ("n_ops", int),
        "inputs": ("n_inputs", int),
        "locality": ("locality", int),
        "cond": ("conditions", int),
        "outputs": ("output_fraction", float),
        "layers": ("layers", int),
        "width": ("width", int),
        "mul_latency": ("mul_latency", int),
        "clock": ("clock_ns", float),
    }
    for chunk in chunks[1:]:
        key, sep, value = chunk.partition("=")
        key = key.strip()
        if not sep:
            raise GeneratorSpecError(
                f"malformed spec clause {chunk!r} (expected key=value)"
            )
        if key == "mix":
            fields["mix"] = _parse_mix(value)
            continue
        if key not in casts:
            raise GeneratorSpecError(
                f"unknown spec knob {key!r} "
                f"(expected one of mix, {', '.join(sorted(casts))})"
            )
        attr, cast = casts[key]
        try:
            fields[attr] = cast(value)
        except ValueError:
            raise GeneratorSpecError(
                f"{key!r} must be a {cast.__name__}, got {value!r}"
            ) from None
    try:
        return GeneratorSpec(**fields)  # type: ignore[arg-type]
    except TypeError as error:  # pragma: no cover - defensive
        raise GeneratorSpecError(str(error)) from None


def spec_fingerprint(spec: GeneratorSpec) -> str:
    """Content address of a generator spec (sha256 hex)."""
    return sha256_of(spec.canonical())


def scenario_timing(spec: GeneratorSpec) -> TimingModel:
    """The timing model a spec's scenarios schedule under.

    Multi-cycle ops (``mul_latency``) and chaining (``clock``) are spec
    knobs precisely so one scenario line can exercise the paper's §5.3
    and §5.4 machinery.
    """
    return TimingModel(
        ops=standard_operation_set(mul_latency=spec.mul_latency),
        clock_period_ns=spec.clock_ns,
    )


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------
def _rng_for(spec: GeneratorSpec, seed: int) -> random.Random:
    """The spec+seed-keyed RNG (string seeding: hash-seed independent)."""
    return random.Random(f"repro-scenario:{spec.to_string()}:{int(seed)}")


def _weighted_kinds(spec: GeneratorSpec) -> Tuple[List[str], List[int]]:
    kinds = [kind for kind, _weight in spec.mix]
    weights = [weight for _kind, weight in spec.mix]
    return kinds, weights


def _branch_plan(
    spec: GeneratorSpec, rng: random.Random, n_ops: int
) -> List[BranchPath]:
    """Assign each op index a branch path over ``spec.conditions`` regions.

    Mirrors :func:`repro.dfg.generators.random_conditional_dfg`: roughly
    half the operations land inside an arm, split evenly between the
    then/else arms of a condition drawn per op; the rest (and always the
    first and last quarter, so every graph has an unconditional spine)
    stay unconditional.
    """
    if spec.conditions == 0:
        return [()] * n_ops
    plan: List[BranchPath] = []
    for _index in range(n_ops):
        if rng.random() < 0.5:
            condition = rng.randrange(spec.conditions)
            arm = rng.random() < 0.5
            plan.append(((f"c{condition}", arm),))
        else:
            plan.append(())
    return plan


def _compatible(port_branch: BranchPath, branch: BranchPath) -> bool:
    """May a value produced on ``port_branch`` feed an op on ``branch``?

    Unconditional values feed anything; an arm-internal value may only
    feed the same arm (reading a then-value in the else arm — or in the
    unconditional tail — would read a never-computed value).
    """
    return port_branch == () or port_branch == branch


def generate_dfg(
    spec: GeneratorSpec, seed: int, name: Optional[str] = None
) -> DFG:
    """Generate the scenario DFG for ``(spec, seed)`` — pure and portable.

    The same arguments produce the same graph (same node names, same
    insertion order, same canonical fingerprint) in any process.
    """
    rng = _rng_for(spec, seed)
    ops = standard_operation_set(mul_latency=spec.mul_latency)
    if spec.family == "layered":
        dfg = _generate_layered(spec, seed, rng, ops, name)
    else:
        dfg = _generate_random(spec, seed, rng, ops, name)
    dfg.validate(ops)
    return dfg


def _arity(ops: OperationSet, kind: str) -> int:
    try:
        return ops.spec(kind).arity
    except Exception:
        raise GeneratorSpecError(
            f"op mix names unknown operation kind {kind!r}"
        ) from None


def _generate_random(
    spec: GeneratorSpec,
    seed: int,
    rng: random.Random,
    ops: OperationSet,
    name: Optional[str],
) -> DFG:
    kinds, weights = _weighted_kinds(spec)
    dfg = DFG(name or f"scenario_{seed}")
    pool: List[Tuple[Port, BranchPath]] = []
    for index in range(spec.n_inputs):
        pool.append((dfg.add_input(f"in{index}"), ()))

    plan = _branch_plan(spec, rng, spec.n_ops)
    for index, branch in enumerate(plan):
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        window = pool[-spec.locality:]
        candidates = [
            port
            for port, port_branch in window
            if _compatible(port_branch, branch)
        ]
        if not candidates:
            # The recent window may hold only other-arm values; inputs
            # are always safe sources.
            candidates = [Port.input(n) for n in dfg.inputs]
        operands = [
            rng.choice(candidates) for _ in range(_arity(ops, kind))
        ]
        port = dfg.add_op(kind, operands, name=f"op{index}", branch=branch)
        if branch == () or rng.random() < 0.5:
            # Arm-internal values participate with lower probability so
            # conditional regions stay shallow (as in the paper's ex4).
            pool.append((port, branch))

    sinks = dfg.sink_nodes()
    keep = max(1, int(round(len(sinks) * spec.output_fraction)))
    for out_index, sink in enumerate(sinks[:keep]):
        dfg.set_output(f"out{out_index}", Port.node(sink))
    return dfg


def _generate_layered(
    spec: GeneratorSpec,
    seed: int,
    rng: random.Random,
    ops: OperationSet,
    name: Optional[str],
) -> DFG:
    kinds, weights = _weighted_kinds(spec)
    dfg = DFG(name or f"scenario_layered_{seed}")
    previous: List[Port] = [
        dfg.add_input(f"in{index}")
        for index in range(max(2, spec.n_inputs))
    ]
    for layer in range(spec.layers):
        current: List[Port] = []
        for column in range(spec.width):
            kind = rng.choices(kinds, weights=weights, k=1)[0]
            operands = [
                rng.choice(previous) for _ in range(_arity(ops, kind))
            ]
            current.append(
                dfg.add_op(kind, operands, name=f"l{layer}c{column}")
            )
        previous = current
    keep = max(1, int(round(len(previous) * spec.output_fraction)))
    for out_index, port in enumerate(previous[:keep]):
        dfg.set_output(f"out{out_index}", port)
    return dfg


def with_seeded_name(spec: GeneratorSpec, seed: int) -> str:
    """Stable human-readable scenario DFG name."""
    return f"{spec.family}_{spec.total_ops()}ops_s{seed}"


def vary(spec: GeneratorSpec, **changes) -> GeneratorSpec:
    """A copy of ``spec`` with fields replaced (validated)."""
    return replace(spec, **changes)
