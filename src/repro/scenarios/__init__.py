"""repro.scenarios — the seeded workload engine.

The paper's experiments run on six textbook designs; this package turns
the repository's verification and chaos machinery into a *workload
engine* that stress-tests every layer on as many designs as a config
file can describe:

* :mod:`repro.scenarios.generator` — fully seeded random-DFG generation
  from compact, declarative *generator specs* (size, depth/width shape,
  op mix, conditionals, multi-cycle ops, chaining).  Every DFG is a pure
  function of ``(spec, seed)`` and fingerprint-stable across processes.
* :mod:`repro.scenarios.matrix` — a scenario-matrix runner: a TOML/JSON
  config of generator × scheduler × kernel × pipelining axes expands
  into concrete scenarios, runs through :mod:`repro.sweep` with
  checkpoint/resume, audits every result via :mod:`repro.check`, and
  emits a byte-reproducible pass/fail grid artifact.
* :mod:`repro.scenarios.replay` — a traffic replayer that drives a live
  :mod:`repro.serve` instance (sharded or not) with seeded synthetic
  arrival processes while a :mod:`repro.resilience` fault plan fires —
  load and chaos in one deterministic run.
* :mod:`repro.scenarios.shrink` — a delta-debugging reducer that shrinks
  any failing scenario to a minimal DFG reproducer, saved as a corpus
  file.

The ``repro-hls scenarios`` CLI (``run`` / ``replay`` / ``shrink``)
fronts all of it; see ``docs/SCENARIOS.md`` for the walkthrough.
"""

from repro.scenarios.generator import (
    GeneratorSpec,
    GeneratorSpecError,
    generate_dfg,
    parse_generator_spec,
    scenario_timing,
    spec_fingerprint,
)
from repro.scenarios.matrix import (
    SYNTHETIC_DEFECTS,
    MatrixConfigError,
    config_fingerprint,
    expand_matrix,
    failing_results,
    grid_payload,
    load_config,
    normalize_config,
    render_grid,
    run_matrix,
    write_grid,
)
from repro.scenarios.replay import (
    ArrivalPattern,
    ReplayReport,
    arrival_offsets,
    parse_arrival_spec,
    run_replay,
)
from repro.scenarios.shrink import (
    ShrinkResult,
    load_reproducer,
    save_reproducer,
    shrink_dfg,
    shrink_scenario,
)

__all__ = [
    "GeneratorSpec",
    "GeneratorSpecError",
    "generate_dfg",
    "parse_generator_spec",
    "scenario_timing",
    "spec_fingerprint",
    "MatrixConfigError",
    "SYNTHETIC_DEFECTS",
    "config_fingerprint",
    "expand_matrix",
    "failing_results",
    "grid_payload",
    "load_config",
    "normalize_config",
    "render_grid",
    "run_matrix",
    "write_grid",
    "ArrivalPattern",
    "ReplayReport",
    "arrival_offsets",
    "parse_arrival_spec",
    "run_replay",
    "ShrinkResult",
    "load_reproducer",
    "save_reproducer",
    "shrink_dfg",
    "shrink_scenario",
]
