"""Scenario-matrix runner: config → scenarios → sweep → pass/fail grid.

A *matrix config* is a small declarative document (TOML on 3.11+, JSON
everywhere) whose axes multiply out into concrete scenarios::

    [matrix]
    name = "smoke"
    seeds = [1, 2, 3]
    generators = ["random:ops=16:cond=1", "layered:layers=4:width=3"]
    schedulers = ["mfs", "mfsa", "list", "fds"]
    kernels = ["scalar"]
    styles = [1]
    libraries = ["datapath"]
    cs_slack = [2]
    pipelined = [false]
    defects = []

Axes that only exist for some schedulers (``kernels`` for MFS/MFSA,
``styles``/``libraries`` for MFSA, ``pipelined`` for MFS/MFSA) are
*collapsed* for the others instead of multiplying into duplicates, and
the expansion is deduplicated by scenario id — so a config never runs
the same work twice.

Every scenario runs :func:`_scenario_worker` (module-level, picklable —
the :class:`~repro.sweep.SweepExecutor` contract) which generates the
DFG, schedules it, audits the result through :mod:`repro.check`, and
applies any *synthetic defect* predicate.  Results are recorded item by
item into a :class:`~repro.resilience.checkpoint.SweepCheckpoint` keyed
by the :func:`config_fingerprint`, so an interrupted matrix resumes at
scenario granularity and a changed config can never reuse stale rows.

Determinism contract: :func:`grid_payload` (what :func:`write_grid`
serialises) contains **no wall-clock data** — same config + seeds →
byte-identical grid artifact across runs, machines and process counts
(wall-clock timings stay available on the in-memory run dict).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.check import check_mfs_result, check_mfsa_result, check_schedule
from repro.dfg.analysis import critical_path_length
from repro.dfg.fingerprint import dfg_fingerprint, sha256_of
from repro.dfg.graph import DFG
from repro.resilience.checkpoint import SweepCheckpoint, resume_map
from repro.scenarios.generator import (
    GeneratorSpecError,
    generate_dfg,
    parse_generator_spec,
    scenario_timing,
)
from repro.sweep import SweepExecutor

try:  # Python 3.11+; the JSON path below covers older interpreters.
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - version-dependent
    _tomllib = None

#: Grid artifact format version.
GRID_VERSION = 1

#: Scheduler axis values and the capabilities that gate the other axes.
SCHEDULERS = ("mfs", "mfsa", "list", "fds")
_KERNEL_SCHEDULERS = frozenset({"mfs", "mfsa"})
_STYLE_SCHEDULERS = frozenset({"mfsa"})

#: Cell-library axis values (MFSA only).
LIBRARIES = ("ncr", "datapath")


class MatrixConfigError(ValueError):
    """A matrix config that cannot be expanded."""


# ---------------------------------------------------------------------------
# Synthetic defects — deliberately-injected failures for shrink tests / CI.
# Each predicate is a pure function of the DFG, so a failing scenario can be
# re-evaluated on every reduction candidate during shrinking.
# ---------------------------------------------------------------------------
def _defect_mul_chain(dfg: DFG) -> List[str]:
    """Fails when a multiplier directly feeds a multiplier.

    Models a scheduler bug triggered by back-to-back multi-cycle ops;
    the minimal reproducer is two chained ``mul`` nodes.
    """
    violations: List[str] = []
    for node in dfg:
        if node.kind != "mul":
            continue
        for pred in node.predecessor_names():
            if dfg.node(pred).kind == "mul":
                violations.append(
                    f"synthetic defect mul-chain: {pred} -> {node.name}"
                )
    return violations


def _defect_fanout4(dfg: DFG) -> List[str]:
    """Fails when any value fans out to four or more consumers."""
    violations: List[str] = []
    for node in dfg:
        consumers = dfg.successors(node.name)
        if len(consumers) >= 4:
            violations.append(
                f"synthetic defect fanout4: {node.name} feeds "
                f"{len(consumers)} ops"
            )
    return violations


#: name → pure DFG predicate returning violation strings (empty = pass).
SYNTHETIC_DEFECTS: Mapping[str, Callable[[DFG], List[str]]] = {
    "mul-chain": _defect_mul_chain,
    "fanout4": _defect_fanout4,
}


# ---------------------------------------------------------------------------
# Config loading / normalisation
# ---------------------------------------------------------------------------
_AXIS_DEFAULTS: Mapping[str, Tuple[Any, ...]] = {
    "seeds": (1,),
    "generators": ("random:ops=16",),
    "schedulers": ("mfs",),
    "kernels": ("scalar",),
    "styles": (1,),
    "libraries": ("datapath",),
    "cs_slack": (2,),
    "pipelined": (False,),
    "defects": (),
}


def normalize_config(raw: Mapping[str, Any]) -> Dict[str, Any]:
    """Validate and canonicalise a matrix config mapping.

    Accepts either the table itself or a document with a ``[matrix]``
    table; fills defaults, type-checks every axis, and rejects unknown
    keys, scheduler names, libraries, defects and unparsable generator
    specs — *before* any scenario runs.
    """
    if not isinstance(raw, Mapping):
        raise MatrixConfigError("matrix config must be a mapping")
    table = raw.get("matrix", raw)
    if not isinstance(table, Mapping):
        raise MatrixConfigError("[matrix] must be a table")

    config: Dict[str, Any] = {"name": str(table.get("name", "matrix"))}
    unknown = set(table) - set(_AXIS_DEFAULTS) - {"name"}
    if unknown:
        raise MatrixConfigError(
            f"unknown matrix key(s): {', '.join(sorted(unknown))}"
        )
    for axis, default in _AXIS_DEFAULTS.items():
        values = table.get(axis, list(default))
        if isinstance(values, (str, bytes)) or not isinstance(
            values, Sequence
        ):
            raise MatrixConfigError(f"{axis} must be a list")
        config[axis] = list(values)

    if not config["seeds"] or not all(
        isinstance(seed, int) and not isinstance(seed, bool)
        for seed in config["seeds"]
    ):
        raise MatrixConfigError("seeds must be a non-empty list of integers")
    if not config["generators"]:
        raise MatrixConfigError("generators must be non-empty")
    for spec in config["generators"]:
        try:
            parse_generator_spec(spec)
        except GeneratorSpecError as error:
            raise MatrixConfigError(
                f"bad generator spec {spec!r}: {error}"
            ) from None
    for scheduler in config["schedulers"]:
        if scheduler not in SCHEDULERS:
            raise MatrixConfigError(
                f"unknown scheduler {scheduler!r} (expected {SCHEDULERS})"
            )
    if not config["schedulers"]:
        raise MatrixConfigError("schedulers must be non-empty")
    for kernel in config["kernels"]:
        if kernel not in ("scalar", "vector", "auto"):
            raise MatrixConfigError(f"unknown kernel {kernel!r}")
    for style in config["styles"]:
        if style not in (1, 2):
            raise MatrixConfigError(f"style must be 1 or 2, got {style!r}")
    for library in config["libraries"]:
        if library not in LIBRARIES:
            raise MatrixConfigError(
                f"unknown library {library!r} (expected one of {LIBRARIES})"
            )
    for slack in config["cs_slack"]:
        if not isinstance(slack, int) or isinstance(slack, bool) or slack < 0:
            raise MatrixConfigError("cs_slack values must be integers >= 0")
    for flag in config["pipelined"]:
        if not isinstance(flag, bool):
            raise MatrixConfigError("pipelined values must be booleans")
    for defect in config["defects"]:
        if defect not in SYNTHETIC_DEFECTS:
            raise MatrixConfigError(
                f"unknown defect {defect!r} "
                f"(expected one of {tuple(SYNTHETIC_DEFECTS)})"
            )
    return config


def load_config(path: str) -> Dict[str, Any]:
    """Load a matrix config from a ``.toml`` or ``.json`` file.

    TOML needs :mod:`tomllib` (Python 3.11+); on older interpreters use
    JSON, which is always supported.
    """
    text = open(path, "rb").read()
    if str(path).endswith(".toml"):
        if _tomllib is None:
            raise MatrixConfigError(
                "TOML configs need Python 3.11+ (tomllib); "
                "use a .json config on this interpreter"
            )
        try:
            raw = _tomllib.loads(text.decode("utf-8"))
        except _tomllib.TOMLDecodeError as error:
            raise MatrixConfigError(f"bad TOML in {path}: {error}") from None
    else:
        try:
            raw = json.loads(text.decode("utf-8"))
        except json.JSONDecodeError as error:
            raise MatrixConfigError(f"bad JSON in {path}: {error}") from None
    return normalize_config(raw)


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """Content address of a normalised matrix config (sha256 hex)."""
    return sha256_of({"format": "repro-scenario-matrix", "config": dict(config)})


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------
def _scenario_id(params: Mapping[str, Any]) -> str:
    return sha256_of({"format": "repro-scenario", "params": dict(params)})[:12]


def expand_matrix(config: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Expand a normalised config into concrete scenario dicts.

    Deterministic order (axis nesting order is fixed), capability-gated
    axes collapsed, duplicates dropped by id.
    """
    scenarios: List[Dict[str, Any]] = []
    seen: set = set()
    defects = list(config["defects"]) or [""]
    for generator in config["generators"]:
        for seed in config["seeds"]:
            for scheduler in config["schedulers"]:
                kernels = (
                    config["kernels"]
                    if scheduler in _KERNEL_SCHEDULERS
                    else ["scalar"]
                )
                styles = (
                    config["styles"] if scheduler in _STYLE_SCHEDULERS else [0]
                )
                libraries = (
                    config["libraries"]
                    if scheduler in _STYLE_SCHEDULERS
                    else [""]
                )
                pipe_flags = (
                    config["pipelined"]
                    if scheduler in _KERNEL_SCHEDULERS
                    else [False]
                )
                for kernel in kernels:
                    for style in styles:
                        for library in libraries:
                            for slack in config["cs_slack"]:
                                for pipelined in pipe_flags:
                                    for defect in defects:
                                        params = {
                                            "generator": generator,
                                            "seed": int(seed),
                                            "scheduler": scheduler,
                                            "kernel": kernel,
                                            "style": style,
                                            "library": library,
                                            "cs_slack": int(slack),
                                            "pipelined": bool(pipelined),
                                            "defect": defect,
                                        }
                                        sid = _scenario_id(params)
                                        if sid in seen:
                                            continue
                                        seen.add(sid)
                                        scenarios.append(
                                            dict(params, id=sid)
                                        )
    return scenarios


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
def _build_library(name: str):
    from repro.library.ncr import datapath_library, ncr_like_library

    if name == "datapath":
        return datapath_library()
    return ncr_like_library()


def run_scenario(
    scenario: Mapping[str, Any], dfg: Optional[DFG] = None
) -> Dict[str, Any]:
    """Generate, schedule, audit and defect-check one scenario.

    Pure function of the scenario dict; never raises — scheduler errors
    become violations so one infeasible cell cannot sink a matrix.
    ``dfg`` substitutes a prebuilt graph for the generated one — the
    shrinker uses this to re-run a scenario on reduction candidates.
    """
    started = time.perf_counter()
    spec = parse_generator_spec(scenario["generator"])
    if dfg is None:
        dfg = generate_dfg(spec, scenario["seed"])
    timing = scenario_timing(spec)
    cs = critical_path_length(dfg, timing) + int(scenario["cs_slack"])
    pipelined_kinds = ("mul",) if scenario.get("pipelined") else ()

    violations: List[str] = []
    makespan = 0
    try:
        scheduler = scenario["scheduler"]
        if scheduler == "mfs":
            from repro.core.mfs import MFSScheduler

            result = MFSScheduler(
                dfg,
                timing,
                cs=cs,
                kernel=scenario.get("kernel", "scalar"),
                pipelined_kinds=pipelined_kinds,
            ).run()
            report = check_mfs_result(result)
            makespan = result.schedule.makespan()
        elif scheduler == "mfsa":
            from repro.core.mfsa import MFSAScheduler

            result = MFSAScheduler(
                dfg,
                timing,
                _build_library(scenario.get("library") or "datapath"),
                cs,
                style=scenario.get("style") or 1,
                kernel=scenario.get("kernel", "scalar"),
                pipelined_kinds=pipelined_kinds,
            ).run()
            report = check_mfsa_result(result)
            makespan = result.schedule.makespan()
        elif scheduler == "list":
            from repro.schedule import list_schedule_time_constrained

            schedule = list_schedule_time_constrained(dfg, timing, cs)
            report = check_schedule(schedule)
            makespan = schedule.makespan()
        elif scheduler == "fds":
            from repro.schedule import force_directed_schedule

            schedule = force_directed_schedule(dfg, timing, cs)
            report = check_schedule(schedule)
            makespan = schedule.makespan()
        else:  # pragma: no cover - normalize_config rejects these
            raise MatrixConfigError(
                f"unknown scheduler {scenario['scheduler']!r}"
            )
        violations.extend(str(v) for v in report.violations)
    except Exception as error:  # scheduler blew up: that IS the finding
        violations.append(f"exception: {type(error).__name__}: {error}")

    defect = scenario.get("defect") or ""
    if defect:
        violations.extend(SYNTHETIC_DEFECTS[defect](dfg))

    return {
        "id": scenario["id"],
        "fingerprint": dfg_fingerprint(dfg),
        "n_ops": len(dfg),
        "cs": cs,
        "makespan": makespan,
        "ok": not violations,
        "violations": sorted(violations),
        "seconds": time.perf_counter() - started,
    }


def _scenario_worker(scenario: Dict[str, Any]) -> Dict[str, Any]:
    """Module-level worker (picklable) for the process-pool sweep."""
    return run_scenario(scenario)


def _strip_timing(result: Mapping[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in result.items() if k != "seconds"}


def run_matrix(
    config: Mapping[str, Any],
    backend: str = "auto",
    workers: Optional[int] = None,
    checkpoint_path: Optional[str] = None,
    perf=None,
    keep_pool: bool = False,
) -> Dict[str, Any]:
    """Expand and execute a matrix; return the full run dict.

    The run dict carries the normalised config, its fingerprint, the
    expanded scenarios and one result per scenario (in expansion order).
    With ``checkpoint_path``, completed scenarios are durably recorded
    and an interrupted run resumes where it stopped — keyed on the
    config fingerprint, so a changed config starts fresh.
    """
    config = normalize_config(config)
    scenarios = expand_matrix(config)
    fingerprint = config_fingerprint(config)
    ckpt = (
        SweepCheckpoint(checkpoint_path, meta={"config": fingerprint})
        if checkpoint_path
        else None
    )
    try:
        with SweepExecutor(
            backend=backend, workers=workers, perf=perf, keep_pool=keep_pool
        ) as executor:
            results = resume_map(
                executor,
                _scenario_worker,
                scenarios,
                ckpt,
                key_fn=lambda scenario: scenario["id"],
                # Checkpointed rows must replay byte-identically, so the
                # wall-clock field never enters the checkpoint.
                encode=_strip_timing,
                decode=lambda value: dict(value, seconds=0.0),
            )
    finally:
        if ckpt is not None:
            ckpt.close()
    return {
        "name": config["name"],
        "config": config,
        "config_fingerprint": fingerprint,
        "scenarios": scenarios,
        "results": results,
    }


# ---------------------------------------------------------------------------
# Grid artifact
# ---------------------------------------------------------------------------
def failing_results(run: Mapping[str, Any]) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
    """(scenario, result) pairs for every failing cell, in grid order."""
    return [
        (scenario, result)
        for scenario, result in zip(run["scenarios"], run["results"])
        if not result["ok"]
    ]


def grid_payload(run: Mapping[str, Any]) -> Dict[str, Any]:
    """The deterministic pass/fail grid (no wall-clock data).

    Byte-reproducible: same config + seeds → the same payload on any
    machine, any backend, any worker count.
    """
    results = [_strip_timing(result) for result in run["results"]]
    return {
        "format": "repro-scenario-grid",
        "version": GRID_VERSION,
        "name": run["name"],
        "config_fingerprint": run["config_fingerprint"],
        "total": len(results),
        "passed": sum(1 for r in results if r["ok"]),
        "failed": sum(1 for r in results if not r["ok"]),
        "scenarios": run["scenarios"],
        "results": results,
    }


def write_grid(run: Mapping[str, Any], path: str) -> Dict[str, Any]:
    """Serialise :func:`grid_payload` to ``path`` (sorted keys, LF)."""
    payload = grid_payload(run)
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def render_grid(run: Mapping[str, Any]) -> str:
    """Human-readable pass/fail table for terminal output."""
    lines = [
        f"scenario matrix {run['name']!r} "
        f"({run['config_fingerprint'][:12]}): "
        f"{len(run['results'])} scenarios"
    ]
    header = (
        f"{'id':<14}{'scheduler':<10}{'kern':<7}{'seed':<6}"
        f"{'ops':<5}{'cs':<4}{'result'}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for scenario, result in zip(run["scenarios"], run["results"]):
        status = "ok" if result["ok"] else (
            "FAIL: " + "; ".join(result["violations"])[:60]
        )
        lines.append(
            f"{scenario['id']:<14}{scenario['scheduler']:<10}"
            f"{scenario['kernel']:<7}{scenario['seed']:<6}"
            f"{result['n_ops']:<5}{result['cs']:<4}{status}"
        )
    passed = sum(1 for r in run["results"] if r["ok"])
    lines.append(
        f"{passed}/{len(run['results'])} passed, "
        f"{len(run['results']) - passed} failed"
    )
    return "\n".join(lines)
