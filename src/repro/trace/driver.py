"""One-call traced runs: behaviour file → (result, trace, report).

This is the layer behind the ``repro-hls trace`` CLI subcommand and the
``docs/sample_report.md`` drift check.  It runs MFS or MFSA with a
:class:`~repro.trace.recorder.TraceRecorder` and a
:class:`~repro.perf.PerfCounters` attached, round-trips the events
through JSONL (so what the report renders is exactly what a reader of
the file would load), replays the Liapunov descent through
:mod:`repro.check`, and renders the markdown report.

Determinism: the process-wide canonical mux-optimiser memo is cleared up
front, so the cache counters embedded in the trace (and hence the
rendered report) are identical no matter what ran earlier in the
process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.allocation.mux import clear_mux_memo
from repro.core.mfs import MFSScheduler
from repro.core.mfsa import MFSAScheduler
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.graph import DFG
from repro.library.cells import CellLibrary
from repro.library.ncr import datapath_library
from repro.perf import PerfCounters
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import parse_jsonl, check_descent
from repro.trace.report import render_run_report


@dataclass
class TracedRun:
    """Everything one traced run produces."""

    result: object            # MFSResult | MFSAResult
    trace: TraceRecorder
    perf: PerfCounters
    jsonl: str                # serialised event stream
    report: str               # rendered markdown report
    violations: List          # replayed-descent violations (empty = OK)

    @property
    def ok(self) -> bool:
        """Whether the replayed Liapunov descent passed the audit."""
        return not self.violations


def trace_run(
    dfg: DFG,
    timing: TimingModel,
    scheduler: str = "mfsa",
    cs: Optional[int] = None,
    style: int = 1,
    library: Optional[CellLibrary] = None,
    latency_l: Optional[int] = None,
    pipelined_kinds=(),
) -> TracedRun:
    """Run one traced MFS/MFSA pass and render its report.

    ``cs`` defaults to the critical-path length; ``library`` (MFSA only)
    to the synthetic NCR-like datapath library.
    """
    if scheduler not in ("mfs", "mfsa"):
        raise ValueError(f"scheduler must be 'mfs' or 'mfsa', got {scheduler!r}")
    clear_mux_memo()
    cs = cs or critical_path_length(dfg, timing)
    trace = TraceRecorder()
    perf = PerfCounters()
    if scheduler == "mfs":
        result = MFSScheduler(
            dfg,
            timing,
            cs=cs,
            mode="time",
            latency_l=latency_l,
            pipelined_kinds=pipelined_kinds,
            trace=trace,
            perf=perf,
        ).run()
    else:
        result = MFSAScheduler(
            dfg,
            timing,
            library if library is not None else datapath_library(),
            cs=cs,
            style=style,
            latency_l=latency_l,
            pipelined_kinds=pipelined_kinds,
            trace=trace,
            perf=perf,
        ).run()

    # Round-trip through JSONL so the report documents exactly what a
    # reader of the trace file would reconstruct.
    jsonl = trace.to_jsonl()
    events = parse_jsonl(jsonl)
    violations = check_descent(events)
    report = render_run_report(events)
    return TracedRun(
        result=result,
        trace=trace,
        perf=perf,
        jsonl=jsonl,
        report=report,
        violations=violations,
    )
