"""Replay loader: JSONL → event stream → Liapunov descent audit.

The loader reverses :meth:`TraceRecorder.to_jsonl` exactly (the
round-trip ``emit → JSONL → load`` reproduces the recorder's event list
verbatim), then reconstructs the paper's §2.2 trajectory from the
recorded decisions:

* each ``op.commit`` becomes a :class:`~repro.core.stability.Trajectory`
  event whose alternatives are the ``cand.eval`` energies recorded for
  that operation since the previous commit;
* :func:`check_descent` pushes the reconstructed trajectory through
  :func:`repro.check.liapunov.check_liapunov_descent`, so a trace on
  disk is auditable against the same §2.2/§2.4 movement properties the
  live scheduler is;
* :func:`descent_curve` / :func:`node_energy_sequences` extract the
  energy-descent data the report renderer plots.

Merged sweep traces hold several runs (tagged by ``src``);
:func:`split_runs` separates them so per-node monotonicity is never
checked across unrelated runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import TraceError
from repro.core.grid import GridPosition
from repro.core.stability import Trajectory
from repro.trace.events import (
    CANDIDATE,
    COMMIT,
    HEADER,
    RUN_START,
    validate_events,
)


def parse_jsonl(text: str, validate: bool = True) -> List[Dict[str, Any]]:
    """Parse JSONL text into the event stream (validating the schema)."""
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except ValueError as error:
            raise TraceError(f"line {lineno}: not valid JSON ({error})") from None
    if validate:
        errors = validate_events(events)
        if errors:
            raise TraceError(
                "invalid trace stream: " + "; ".join(errors[:5])
                + (f" (+{len(errors) - 5} more)" if len(errors) > 5 else "")
            )
    return events


def read_jsonl(path, validate: bool = True) -> List[Dict[str, Any]]:
    """Load and validate a trace file written by ``write_jsonl``."""
    return parse_jsonl(Path(path).read_text(), validate=validate)


def split_runs(events) -> List[List[Dict[str, Any]]]:
    """Split a stream into per-run event lists.

    Events are first grouped by their ``src`` tag (``None`` for locally
    recorded events, a worker label for merged sweep traces), preserving
    first-appearance order; each group is then split at ``run.start``
    boundaries.  Header lines are dropped.  Events preceding the first
    ``run.start`` of a group form their own (anonymous) run.
    """
    groups: Dict[Optional[str], List[Dict[str, Any]]] = {}
    order: List[Optional[str]] = []
    for event in events:
        if event.get("t") == HEADER:
            continue
        src = event.get("src")
        if src not in groups:
            groups[src] = []
            order.append(src)
        groups[src].append(event)

    runs: List[List[Dict[str, Any]]] = []
    for src in order:
        current: List[Dict[str, Any]] = []
        for event in groups[src]:
            if event["t"] == RUN_START and current:
                runs.append(current)
                current = []
            current.append(event)
        if current:
            runs.append(current)
    return runs


def to_trajectory(run_events) -> Trajectory:
    """Rebuild the §2.2 trajectory of one run from its commit events."""
    trajectory = Trajectory()
    pending: Dict[str, List[Tuple[GridPosition, float]]] = {}
    for event in run_events:
        kind = event["t"]
        if kind == CANDIDATE:
            pending.setdefault(event["node"], []).append(
                (GridPosition(event["table"], event["x"], event["y"]),
                 event["e"])
            )
        elif kind == COMMIT:
            alternatives = tuple(pending.pop(event["node"], ()))
            pending.clear()
            trajectory.record(
                node=event["node"],
                position=GridPosition(event["table"], event["x"], event["y"]),
                energy=event["e"],
                alternatives=alternatives,
            )
    return trajectory


def descent_curve(run_events) -> List[Tuple[int, str, float]]:
    """``(iteration, node, chosen energy)`` per commit, in commit order."""
    return [
        (index, event["node"], event["e"])
        for index, event in enumerate(
            e for e in run_events if e["t"] == COMMIT
        )
    ]


def node_energy_sequences(run_events) -> Dict[str, List[float]]:
    """Per-node committed-energy sequences (re-placements append)."""
    sequences: Dict[str, List[float]] = {}
    for event in run_events:
        if event["t"] == COMMIT:
            sequences.setdefault(event["node"], []).append(event["e"])
    return sequences


def check_descent(events) -> List:
    """Audit every run of a stream against the §2.2 movement properties.

    Returns the combined :class:`repro.check.report.Violation` list from
    :func:`repro.check.liapunov.check_liapunov_descent` — empty means the
    replayed Liapunov descent holds: every commit was the argmin of the
    alternatives the scheduler recorded, and per-node energies never
    increased.
    """
    from repro.check.liapunov import check_liapunov_descent

    violations: List = []
    for run in split_runs(events):
        violations.extend(check_liapunov_descent(to_trajectory(run)))
    return violations


def run_meta(run_events) -> Dict[str, Any]:
    """The run's ``run.start`` fields (empty dict for anonymous runs)."""
    for event in run_events:
        if event["t"] == RUN_START:
            return event
    return {}
