"""Self-contained markdown/SVG run reports from trace event streams.

:func:`render_run_report` turns a (loaded or freshly recorded) event
stream into one markdown document with inline SVG — a schedule Gantt
rebuilt from the commit events, the Liapunov energy-descent curve, a
move-frame occupancy heat strip, and the perf counter / cache table —
plus the replayed §2.2 descent audit verdict.  Everything is derived
from the events alone (no wall-clock readings), so regenerating a report
from the same trace is byte-identical; ``docs/sample_report.md`` is kept
under exactly that drift check.

The SVG pieces come from :mod:`repro.io.svg`
(:func:`~repro.io.svg.gantt_to_svg`,
:func:`~repro.io.svg.line_chart_to_svg`,
:func:`~repro.io.svg.heat_strip_to_svg`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.io.svg import gantt_to_svg, heat_strip_to_svg, line_chart_to_svg
from repro.trace.events import (
    CANDIDATE,
    COMMIT,
    COUNTERS,
    FRAME,
    RESCHEDULE,
    RUN_END,
)
from repro.trace.replay import (
    check_descent,
    descent_curve,
    run_meta,
    split_runs,
)


def _gantt_section(run: List[Dict[str, Any]], cs: int, design: str) -> str:
    cells = [
        (
            f"{event['table']}#{event['x']}",
            event["y"],
            event["lat"],
            event["node"],
            event["kind"],
        )
        for event in run
        if event["t"] == COMMIT
    ]
    if not cells:
        return "_No commits recorded._"
    return gantt_to_svg(cells, cs, f"schedule of {design}")


def _descent_section(run: List[Dict[str, Any]]) -> str:
    curve = descent_curve(run)
    if not curve:
        return "_No commits recorded._"
    chosen = [(float(i), float(e)) for i, _node, e in curve]
    # Worst candidate the scheduler priced per commit — the gap to the
    # chosen line is the energy the argmin saved at that iteration.
    worst_by_node: Dict[str, float] = {}
    pending: Dict[str, float] = {}
    for event in run:
        if event["t"] == CANDIDATE:
            node = event["node"]
            pending[node] = max(pending.get(node, event["e"]), event["e"])
        elif event["t"] == COMMIT:
            worst_by_node[event["node"]] = pending.pop(
                event["node"], event["e"]
            )
            pending.clear()
    worst = [
        (float(i), float(worst_by_node.get(node, e)))
        for i, node, e in curve
    ]
    series = [("worst candidate", worst), ("chosen (argmin)", chosen)]
    return line_chart_to_svg(
        series,
        "Liapunov energy per commit",
        x_label="commit iteration",
        y_label="V",
    )


def _occupancy_section(run: List[Dict[str, Any]]) -> str:
    frames = [event for event in run if event["t"] == FRAME]
    if not frames:
        return "_No frame constructions recorded._"
    values = [event["mf"] for event in frames]
    labels = [
        f"{event['node']} in {event['table']}: |MF|={event['mf']} "
        f"(current={event['current']})"
        for event in frames
    ]
    empty = sum(1 for v in values if v == 0)
    strip = heat_strip_to_svg(
        values, "move-frame size per frame construction", labels=labels
    )
    note = (
        f"\n\n{len(frames)} frame constructions; {empty} produced an empty "
        f"move frame (each one triggers §3.2 Step-4 local rescheduling)."
    )
    return strip + note


def _counters_section(run: List[Dict[str, Any]]) -> str:
    snapshots = [event for event in run if event["t"] == COUNTERS]
    if not snapshots:
        return "_No perf counters attached to this run._"
    counters = snapshots[-1]["counters"]
    lines = ["| counter | value |", "|---|---|"]
    for name in sorted(counters):
        lines.append(f"| `{name}` | {counters[name]} |")
    for prefix in ("mfsa.mux_cache", "mfsa.operand_cache", "mfsa.reg_cache"):
        hits = counters.get(f"{prefix}_hits", 0)
        misses = counters.get(f"{prefix}_misses", 0)
        if hits + misses:
            lines.append(
                f"| `{prefix}_hit_rate` | {hits / (hits + misses):.1%} |"
            )
    return "\n".join(lines)


def _result_section(run: List[Dict[str, Any]]) -> Optional[str]:
    end = next((e for e in run if e["t"] == RUN_END), None)
    if end is None:
        return None
    lines: List[str] = []
    if "fu_counts" in end:
        mix = ", ".join(
            f"{kind}: {count}"
            for kind, count in sorted(end["fu_counts"].items())
        )
        lines.append(f"FU usage — {mix}.")
    if "alus" in end:
        lines.append("ALUs — " + "; ".join(end["alus"]) + ".")
    if "cost" in end:
        cost = end["cost"]
        lines.append(
            f"Cost — ALU {cost['alu']:.0f}, registers "
            f"{cost['registers']:.0f}, mux {cost['mux']:.0f}, total "
            f"**{cost['total']:.0f}**."
        )
    return "\n".join(lines) if lines else None


def render_run_report(events, title: Optional[str] = None) -> str:
    """Render one markdown run report from an event stream.

    Multi-run streams (merged sweeps) get one section block per run.
    The report embeds the replayed-descent verdict; violations are
    listed rather than raised so a report can document a broken trace.
    """
    runs = split_runs(events)
    violations = check_descent(events)
    total_events = sum(len(run) for run in runs)

    out: List[str] = []
    meta0 = run_meta(runs[0]) if runs else {}
    heading = title or (
        f"Run report — {meta0.get('design', 'trace')}" if meta0 else "Run report"
    )
    out.append(f"# {heading}")
    out.append("")
    out.append(
        "_Generated by `repro-hls trace` (schema v1 — see "
        "`docs/TRACING.md`).  Every figure below is reconstructed from "
        "the JSONL event stream alone._"
    )
    out.append("")
    if violations:
        out.append(
            f"**Replayed Liapunov descent: {len(violations)} violation(s).**"
        )
        for violation in violations:
            out.append(f"- `{violation.code}` {violation.subject}: "
                       f"{violation.message}")
    else:
        commits = sum(
            1 for run in runs for e in run if e["t"] == COMMIT
        )
        out.append(
            f"Replayed Liapunov descent: **OK** — every one of the "
            f"{commits} commits is the argmin of its recorded move frame "
            f"and per-node energies are monotone non-increasing (§2.2)."
        )
    out.append("")
    out.append(f"{total_events} events across {len(runs)} run(s).")

    for number, run in enumerate(runs, start=1):
        meta = run_meta(run)
        scheduler = meta.get("scheduler", "?")
        design = meta.get("design", "?")
        cs = meta.get("cs", 0)
        info = meta.get("info", {})
        src = meta.get("src")
        label = f"{scheduler.upper()} on `{design}`, T = {cs}"
        if info:
            label += " (" + ", ".join(
                f"{k}={v}" for k, v in sorted(info.items())
            ) + ")"
        if src is not None:
            label += f" — worker `{src}`"
        out.append("")
        out.append(f"## Run {number}: {label}")
        reschedules = [e for e in run if e["t"] == RESCHEDULE]
        if reschedules:
            moves = ", ".join(
                f"`{e['node']}` ({e['action']} → {e['current']})"
                for e in reschedules
            )
            out.append("")
            out.append(f"Local rescheduling: {moves}.")
        result = _result_section(run)
        if result:
            out.append("")
            out.append(result)
        out.append("")
        out.append("### Schedule (Gantt)")
        out.append("")
        out.append(_gantt_section(run, int(cs) if cs else 1, design))
        out.append("")
        out.append("### Liapunov descent")
        out.append("")
        out.append(_descent_section(run))
        out.append("")
        out.append("### Move-frame occupancy")
        out.append("")
        out.append(_occupancy_section(run))
        out.append("")
        out.append("### Counters")
        out.append("")
        out.append(_counters_section(run))
    out.append("")
    return "\n".join(out)
