"""repro.trace — structured decision tracing and run reports.

The observability layer of the reproduction: a low-overhead, span-based
event recorder hooked into the MFS/MFSA inner loops (zero-cost when
absent), a versioned JSONL export, a replay loader that reconstructs the
§2.2 Liapunov descent and audits it through :mod:`repro.check`, and a
markdown/SVG run-report renderer.

* :class:`TraceRecorder` — pass as ``trace=`` to
  :class:`~repro.core.mfs.MFSScheduler` /
  :class:`~repro.core.mfsa.MFSAScheduler` (or the ``mfs_schedule`` /
  ``mfsa_synthesize`` wrappers);
* :func:`read_jsonl` / :func:`parse_jsonl` — load a trace file back;
* :func:`check_descent` — replay the recorded trajectory against the
  paper's movement properties;
* :func:`render_run_report` — self-contained markdown report (Gantt,
  energy descent, move-frame occupancy, counters);
* :func:`trace_run` — one-call traced run (the CLI ``repro-hls trace``).

Schema: ``docs/TRACING.md``; paper mapping: ``docs/PAPER_MAP.md``.
"""

from repro.trace.events import (
    SCHEMA_VERSION,
    validate_event,
    validate_events,
)
from repro.trace.recorder import TraceRecorder, events_to_jsonl
from repro.trace.replay import (
    check_descent,
    descent_curve,
    node_energy_sequences,
    parse_jsonl,
    read_jsonl,
    split_runs,
    to_trajectory,
)
from repro.trace.report import render_run_report
from repro.trace.driver import TracedRun, trace_run

__all__ = [
    "SCHEMA_VERSION",
    "TraceRecorder",
    "TracedRun",
    "check_descent",
    "descent_curve",
    "events_to_jsonl",
    "node_energy_sequences",
    "parse_jsonl",
    "read_jsonl",
    "render_run_report",
    "split_runs",
    "to_trajectory",
    "trace_run",
    "validate_event",
    "validate_events",
]
