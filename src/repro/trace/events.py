"""The trace event schema (version 1).

Every trace is a stream of flat JSON objects, one per JSONL line.  The
first line is always the header; every subsequent event carries a
sequence number ``i`` (0-based, per stream) and a type tag ``t``.  The
full field-by-field documentation, with a worked EWF excerpt, lives in
``docs/TRACING.md``; the mapping from each event type to the paper
section it witnesses is in ``docs/PAPER_MAP.md``.

Event types
-----------
``trace.header``
    ``{"t", "v"}`` — schema version marker, always the first line.
``run.start``
    ``{"t", "i", "scheduler", "design", "cs"}`` plus an optional
    ``info`` object (MFS: ``{"mode": ...}``; MFSA: ``{"style": ...}``)
    and, on merged sweep traces, a ``src`` worker tag.
``frame.built``
    One PF/RF/FF/MF construction (§3.2 Step 4): ``pf_rows``/``pf_cols``
    inclusive ``[lo, hi]`` pairs, ``rf_cols`` (``null`` when every
    instance is open), the forbidden-frame bounds ``ff_before``/
    ``ff_after``, chaining re-admitted ``chain_rows``, the move-frame
    size ``mf`` and the opened-instance count ``current``.
``cand.eval``
    One Liapunov evaluation of a move-frame position: ``x``, ``y``,
    total energy ``e``; MFSA additionally records the §4.1 breakdown
    ``ft``/``fa``/``fm``/``fr`` (unweighted f_TIME/f_ALU/f_MUX/f_REG).
``op.commit``
    The argmin placement of one operation: ``kind``, ``table``, ``x``,
    ``y``, chosen energy ``e``, latency ``lat`` and, for MFSA, the ALU
    ``cell`` label.
``resched``
    Local rescheduling (§3.2 Step 4): ``action`` is ``"open-fu"``
    (``current_j`` grew), ``"widen-table"`` (auto bounds relaxed) or
    ``"fresh-instance"`` (MFSA's second gather pass), with the
    resulting ``current`` count.
``perf.counters``
    Snapshot of the run's :mod:`repro.perf` counters (cache hit/miss
    attribution); emitted just before ``run.end`` when the scheduler
    holds a :class:`~repro.perf.PerfCounters`.
``run.end``
    Terminal summary: ``commits`` plus scheduler-specific result fields
    (MFS: ``fu_counts``; MFSA: ``cost`` and ``alus``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

#: Schema version emitted in the ``trace.header`` line.  Bump on any
#: backwards-incompatible field change and document the migration in
#: docs/TRACING.md.
SCHEMA_VERSION = 1

HEADER = "trace.header"
RUN_START = "run.start"
FRAME = "frame.built"
CANDIDATE = "cand.eval"
COMMIT = "op.commit"
RESCHEDULE = "resched"
COUNTERS = "perf.counters"
RUN_END = "run.end"

#: Required fields per event type (beyond the ``t``/``i`` envelope).
REQUIRED_FIELDS: Mapping[str, tuple] = {
    RUN_START: ("scheduler", "design", "cs"),
    FRAME: (
        "node",
        "table",
        "pf_rows",
        "pf_cols",
        "rf_cols",
        "ff_before",
        "ff_after",
        "chain_rows",
        "mf",
        "current",
    ),
    CANDIDATE: ("node", "table", "x", "y", "e"),
    COMMIT: ("node", "kind", "table", "x", "y", "e", "lat"),
    RESCHEDULE: ("node", "table", "action", "current"),
    COUNTERS: ("counters",),
    RUN_END: ("commits",),
}

#: Fields that must hold (JSON) numbers when present.
_NUMERIC_FIELDS = frozenset(
    ("cs", "x", "y", "e", "lat", "ff_before", "ff_after", "mf", "current",
     "commits", "ft", "fa", "fm", "fr")
)

_RESCHEDULE_ACTIONS = frozenset(("open-fu", "widen-table", "fresh-instance"))


def validate_event(obj: Any) -> Optional[str]:
    """Validate one (non-header) event object; return an error or None."""
    if not isinstance(obj, dict):
        return f"event is not an object: {obj!r}"
    kind = obj.get("t")
    if kind == HEADER:
        if obj.get("v") != SCHEMA_VERSION:
            return (
                f"unsupported trace schema version {obj.get('v')!r} "
                f"(this library reads v{SCHEMA_VERSION})"
            )
        return None
    if kind not in REQUIRED_FIELDS:
        return f"unknown event type {kind!r}"
    if not isinstance(obj.get("i"), int):
        return f"{kind} event lacks an integer sequence number 'i'"
    for field in REQUIRED_FIELDS[kind]:
        if field not in obj:
            return f"{kind} event #{obj['i']} lacks required field {field!r}"
    for field in _NUMERIC_FIELDS:
        if field in obj and not isinstance(obj[field], (int, float)):
            return f"{kind} event #{obj['i']}: field {field!r} is not a number"
    if kind == RESCHEDULE and obj["action"] not in _RESCHEDULE_ACTIONS:
        return (
            f"resched event #{obj['i']}: unknown action {obj['action']!r} "
            f"(expected one of {sorted(_RESCHEDULE_ACTIONS)})"
        )
    if kind == FRAME:
        for field in ("pf_rows", "pf_cols"):
            pair = obj[field]
            if not (isinstance(pair, list) and len(pair) == 2):
                return (
                    f"frame.built event #{obj['i']}: {field} must be a "
                    f"[lo, hi] pair, got {pair!r}"
                )
        if obj["rf_cols"] is not None and not (
            isinstance(obj["rf_cols"], list) and len(obj["rf_cols"]) == 2
        ):
            return (
                f"frame.built event #{obj['i']}: rf_cols must be a "
                f"[lo, hi] pair or null, got {obj['rf_cols']!r}"
            )
    return None


def validate_events(events) -> List[str]:
    """Validate a full event stream (header first); return all errors."""
    errors: List[str] = []
    events = list(events)
    if not events:
        return ["empty trace (no header line)"]
    head = events[0]
    if not (isinstance(head, dict) and head.get("t") == HEADER):
        errors.append("first event is not a trace.header line")
    for obj in events:
        error = validate_event(obj)
        if error is not None:
            errors.append(error)
    return errors


def header_object() -> Dict[str, Any]:
    """The canonical header line object."""
    return {"t": HEADER, "v": SCHEMA_VERSION}
