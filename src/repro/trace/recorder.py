"""Low-overhead structured event recorder.

:class:`TraceRecorder` is threaded through
:class:`~repro.core.mfs.MFSScheduler` and
:class:`~repro.core.mfsa.MFSAScheduler` exactly like
:class:`~repro.perf.PerfCounters`: ``None`` means "don't trace" and hot
paths guard every emission with a single ``is not None`` check, so a
disabled trace costs nothing.  When enabled, each emission appends one
small tuple to a flat list — no dict construction, no serialisation —
and the per-candidate energies (the only per-inner-iteration data) are
batched per move frame (:meth:`candidates` /
:meth:`candidates_detailed`), so a scheduler pays one append per frame
rather than one call per candidate.  The JSON objects are materialised
lazily by :meth:`events` / :meth:`to_jsonl`.  The overhead budget (<5 % on the EWF kernel run) is
enforced by ``benchmarks/bench_trace_overhead.py``.

Spans: a run is bracketed by :meth:`run_start` / :meth:`run_end`; one
recorder may hold several runs (a sweep merges per-worker streams via
:meth:`merge`, tagging each event with its ``src`` worker).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.trace.events import (
    CANDIDATE,
    COMMIT,
    COUNTERS,
    FRAME,
    RESCHEDULE,
    RUN_END,
    RUN_START,
    header_object,
)

# Internal storage tags (small ints: cheaper tuples than string tags).
(
    _RUN_START,
    _FRAME,
    _CAND,
    _CANDS,
    _CANDS_DETAILED,
    _COMMIT,
    _RESCHED,
    _COUNTERS,
    _RUN_END,
    _EXTERN,
) = range(10)


class TraceRecorder:
    """Append-only recorder of typed scheduling-decision events."""

    __slots__ = ("_raw",)

    def __init__(self) -> None:
        self._raw: List[tuple] = []

    def __len__(self) -> int:
        """Number of recorded events (batched candidates count per item)."""
        total = 0
        for raw in self._raw:
            tag = raw[0]
            if tag == _CANDS:
                total += len(raw[3])
            elif tag == _CANDS_DETAILED:
                total += len(raw[2])
            else:
                total += 1
        return total

    # -- emission (hot paths; keep these to one append each) -------------
    def run_start(self, scheduler: str, design: str, cs: int, **info) -> None:
        """Open a run span (``info`` lands in the event's ``info`` object)."""
        self._raw.append((_RUN_START, scheduler, design, cs, info or None))

    def frame(self, node: str, table: str, frame_set, current: int) -> None:
        """Record one PF/RF/FF/MF construction (§3.2 Step 4).

        ``frame_set`` is the :class:`~repro.core.frames.FrameSet` just
        built — the recorder keeps the object and unpacks its geometry
        lazily at materialisation (frame sets are built once per
        construction and never mutated afterwards).
        """
        self._raw.append((_FRAME, node, table, frame_set, current))

    def candidate(
        self,
        node: str,
        table: str,
        x: int,
        y: int,
        energy: float,
        f_time: Optional[float] = None,
        f_alu: Optional[float] = None,
        f_mux: Optional[float] = None,
        f_reg: Optional[float] = None,
    ) -> None:
        """Record one Liapunov evaluation (MFSA passes the §4.1 breakdown)."""
        self._raw.append(
            (_CAND, node, table, x, y, energy, f_time, f_alu, f_mux, f_reg)
        )

    def candidates(self, node: str, table: str, pairs) -> None:
        """Record a whole move frame of Liapunov evaluations in one append.

        ``pairs`` iterates ``(position, energy)`` with ``.x``/``.y``
        positions (an MFS ``values.items()`` view); the batch expands to
        one ``cand.eval`` event per pair on materialisation, so the
        scheduler pays one tuple append per frame instead of one call
        per candidate.
        """
        self._raw.append((_CANDS, node, table, tuple(pairs)))

    def candidates_detailed(self, node: str, items, c_constant: float) -> None:
        """Batch variant carrying the §4.1 breakdown (MFSA's hot path).

        ``items`` iterates ``(table, x, y, energy, f_alu, f_mux, f_reg)``
        tuples; expansion yields one ``cand.eval`` per item, deriving
        ``f_time = C·y`` from ``c_constant`` so the scheduler's inner
        loop never pays for it.
        """
        self._raw.append((_CANDS_DETAILED, node, tuple(items), c_constant))

    def commit(
        self,
        node: str,
        kind: str,
        table: str,
        x: int,
        y: int,
        energy: float,
        latency: int,
        cell=None,
    ) -> None:
        """Record the argmin placement of one operation.

        ``cell`` is the chosen ALU label (MFSA) — either the string
        itself or any object with a ``label()`` method (a library
        :class:`~repro.library.cells.Cell`), resolved lazily at
        materialisation so the commit path never pays for the
        sorted-symbol rendering.
        """
        self._raw.append((_COMMIT, node, kind, table, x, y, energy, latency, cell))

    def reschedule(self, node: str, table: str, action: str, current: int) -> None:
        """Record a local-rescheduling step (FU opening / table widening)."""
        self._raw.append((_RESCHED, node, table, action, current))

    def counters(self, counters: Dict[str, int]) -> None:
        """Record a :mod:`repro.perf` counter snapshot (cache attribution)."""
        self._raw.append((_COUNTERS, dict(counters)))

    def run_end(self, commits: int, **fields) -> None:
        """Close the run span with its terminal summary."""
        self._raw.append((_RUN_END, commits, fields))

    # -- merging ---------------------------------------------------------
    def merge(self, events: Iterable[Dict[str, Any]], source: str) -> None:
        """Fold a worker's :meth:`snapshot` into this recorder.

        Each merged event is tagged with ``src=source`` so replay can
        split the combined stream back into per-worker runs; sequence
        numbers are reassigned on materialisation.
        """
        for event in events:
            tagged = dict(event)
            tagged.pop("i", None)
            tagged["src"] = source
            self._raw.append((_EXTERN, tagged))

    # -- materialisation -------------------------------------------------
    def _expand(self, raw: tuple):
        """Yield the JSON objects (sans sequence number) of one raw entry.

        Batched candidate entries expand to one ``cand.eval`` per
        candidate; everything else yields exactly one object.
        """
        tag = raw[0]
        if tag == _CANDS:
            node, table = raw[1], raw[2]
            for position, energy in raw[3]:
                yield {
                    "t": CANDIDATE,
                    "node": node,
                    "table": table,
                    "x": position.x,
                    "y": position.y,
                    "e": energy,
                }
            return
        if tag == _CANDS_DETAILED:
            node, c_constant = raw[1], raw[3]
            for table, x, y, energy, f_alu, f_mux, f_reg in raw[2]:
                yield {
                    "t": CANDIDATE,
                    "node": node,
                    "table": table,
                    "x": x,
                    "y": y,
                    "e": energy,
                    "ft": c_constant * y,
                    "fa": f_alu,
                    "fm": f_mux,
                    "fr": f_reg,
                }
            return
        if tag == _CAND:
            obj = {
                "t": CANDIDATE,
                "node": raw[1],
                "table": raw[2],
                "x": raw[3],
                "y": raw[4],
                "e": raw[5],
            }
            if raw[6] is not None:
                obj["ft"], obj["fa"], obj["fm"], obj["fr"] = raw[6:10]
            yield obj
            return
        if tag == _FRAME:
            frame_set = raw[3]
            yield {
                "t": FRAME,
                "node": raw[1],
                "table": raw[2],
                "pf_rows": list(frame_set.pf_rows),
                "pf_cols": list(frame_set.pf_cols),
                "rf_cols": (
                    list(frame_set.rf_cols)
                    if frame_set.rf_cols is not None
                    else None
                ),
                "ff_before": frame_set.ff_rows_before,
                "ff_after": frame_set.ff_rows_after,
                "chain_rows": list(frame_set.chain_rows),
                "mf": len(frame_set.mf),
                "current": raw[4],
            }
            return
        if tag == _COMMIT:
            obj = {
                "t": COMMIT,
                "node": raw[1],
                "kind": raw[2],
                "table": raw[3],
                "x": raw[4],
                "y": raw[5],
                "e": raw[6],
                "lat": raw[7],
            }
            if raw[8] is not None:
                cell = raw[8]
                obj["cell"] = cell if isinstance(cell, str) else cell.label()
            yield obj
            return
        if tag == _RESCHED:
            yield {
                "t": RESCHEDULE,
                "node": raw[1],
                "table": raw[2],
                "action": raw[3],
                "current": raw[4],
            }
            return
        if tag == _RUN_START:
            obj = {
                "t": RUN_START,
                "scheduler": raw[1],
                "design": raw[2],
                "cs": raw[3],
            }
            if raw[4]:
                obj["info"] = dict(raw[4])
            yield obj
            return
        if tag == _COUNTERS:
            yield {"t": COUNTERS, "counters": dict(raw[1])}
            return
        if tag == _RUN_END:
            obj = {"t": RUN_END, "commits": raw[1]}
            obj.update(raw[2])
            yield obj
            return
        if tag == _EXTERN:
            yield dict(raw[1])
            return
        raise AssertionError(f"unknown raw tag {tag!r}")  # pragma: no cover

    def _objects(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        index = 0
        for raw in self._raw:
            for obj in self._expand(raw):
                obj["i"] = index
                index += 1
                out.append(obj)
        return out

    def events(self) -> List[Dict[str, Any]]:
        """Materialise the full stream: header line + numbered events."""
        return [header_object()] + self._objects()

    def snapshot(self) -> List[Dict[str, Any]]:
        """Header-less event list (picklable; crosses process boundaries)."""
        return self._objects()

    # -- serialisation ---------------------------------------------------
    def to_jsonl(self) -> str:
        """One compact JSON object per line, header first."""
        return events_to_jsonl(self.events())

    def write_jsonl(self, path) -> None:
        """Write :meth:`to_jsonl` to a file."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())


def events_to_jsonl(events: Sequence[Dict[str, Any]]) -> str:
    """Serialise an event stream to JSONL text (deterministic key order)."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in events
    )
