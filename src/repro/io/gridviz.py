"""Figure-1-style rendering: the placement table and a Liapunov move.

The paper's Figure 1 shows an operation's *present* position ``O_i^p`` and
*next* position ``O_i^n`` in the 2-D placement table, the move decreasing
the Liapunov energy.  :func:`render_move` regenerates that picture from a
real :class:`~repro.core.stability.TrajectoryEvent`: the highest-energy
alternative the algorithm evaluated plays the "present" role and the
chosen position the "next" role, with ΔX/ΔY and ΔV annotated.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.grid import GridPosition, PlacementGrid
from repro.core.stability import TrajectoryEvent


def render_grid(
    grid: PlacementGrid,
    table: str,
    mark: Optional[GridPosition] = None,
    mark_char: str = "O",
) -> str:
    """ASCII rendering of one placement table (X = FU index, Y = step)."""
    columns = grid.columns(table)
    width = 3
    lines = [f"placement table {table!r} ({columns} units x {grid.cs} steps)"]
    header = "      " + "".join(f"x={x:<{width}}" for x in range(1, columns + 1))
    lines.append(header)
    for step in range(1, grid.cs + 1):
        cells: List[str] = []
        for x in range(1, columns + 1):
            occupants = grid.occupants(table, x, step)
            if mark is not None and mark.x == x and mark.y == step:
                cell = mark_char
            elif occupants:
                cell = "X"
            else:
                cell = "."
            cells.append(f"  {cell}  "[:width + 2])
        lines.append(f"y={step:>3} " + "".join(cells))
    return "\n".join(lines)


def render_move(event: TrajectoryEvent, grid: PlacementGrid) -> str:
    """Figure-1 regeneration: present → next position of one operation."""
    chosen = event.position
    lines = [f"Figure 1 — move of operation {event.node!r} in table {chosen.table!r}"]
    present = None
    if event.alternatives:
        present = max(event.alternatives, key=lambda item: item[1])
    table_lines = render_grid(grid, chosen.table, mark=chosen, mark_char="N")
    if present is not None and present[0] != chosen:
        # Overlay the "present" (highest-energy) position with P.
        rendered = table_lines.splitlines()
        row_index = 1 + present[0].y  # header + offset
        row = list(rendered[row_index])
        column_offset = 6 + (present[0].x - 1) * 5 + 2
        if column_offset < len(row):
            row[column_offset] = "P"
        rendered[row_index] = "".join(row)
        table_lines = "\n".join(rendered)
    lines.append(table_lines)
    lines.append(f"next position O^n = (x={chosen.x}, y={chosen.y}), V = {event.energy:.3f}")
    if present is not None:
        pos, energy = present
        lines.append(
            f"present (worst evaluated) O^p = (x={pos.x}, y={pos.y}), V = {energy:.3f}"
        )
        lines.append(
            f"move: dX = {chosen.x - pos.x}, dY = {chosen.y - pos.y}, "
            f"dV = {event.energy - energy:.3f} (must be <= 0)"
        )
    return "\n".join(lines)
