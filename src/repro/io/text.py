"""Plain-text tables for schedules and datapaths."""

from __future__ import annotations

from typing import List

from repro.dfg.ops import OP_SYMBOLS
from repro.schedule.types import Schedule
from repro.allocation.datapath import Datapath


def render_schedule(schedule: Schedule) -> str:
    """One line per control step listing the active operations."""
    dfg, timing = schedule.dfg, schedule.timing
    lines = [
        f"schedule of {dfg.name!r}: {schedule.cs} steps, "
        f"makespan {schedule.makespan()}, FUs {schedule.fu_usage()}"
    ]
    for step in range(1, schedule.cs + 1):
        active: List[str] = []
        for name in dfg.node_names():
            start = schedule.start(name)
            kind = dfg.node(name).kind
            latency = timing.latency(kind)
            if start <= step < start + latency:
                symbol = (
                    timing.ops.spec(kind).symbol
                    if kind in timing.ops
                    else OP_SYMBOLS.get(kind, "?")
                )
                stage = f"/{step - start + 1}" if latency > 1 else ""
                active.append(f"{name}({symbol}){stage}")
        lines.append(f"  cs{step:>3}: {', '.join(active) if active else '-'}")
    return "\n".join(lines)


def render_datapath(datapath: Datapath) -> str:
    """Human-readable datapath summary (the Table-2 row, expanded)."""
    cost = datapath.cost_breakdown()
    lines = [
        f"datapath of {datapath.schedule.dfg.name!r} "
        f"(library {datapath.library.name!r})",
        f"  cost: {cost.total:.0f} um^2 "
        f"(ALU {cost.alu:.0f}, REG {cost.registers:.0f}, MUX {cost.mux:.0f})",
        f"  registers: {datapath.register_count()}, "
        f"muxes: {datapath.mux_count()} with {datapath.mux_inputs()} inputs",
    ]
    for key, instance in sorted(datapath.instances.items()):
        ops = ", ".join(instance.ops)
        lines.append(
            f"  {instance.label():<10} area {instance.cell.area:>8.0f}  "
            f"L1={list(instance.mux.l1)} L2={list(instance.mux.l2)}  ops: {ops}"
        )
    for register in range(datapath.registers.count):
        values = ", ".join(datapath.registers.values_in(register))
        lines.append(f"  r{register}: {values}")
    return "\n".join(lines)
