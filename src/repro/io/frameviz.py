"""Figure-2-style rendering: the PF/RF/FF/MF frames of one operation.

The paper's Figure 2(b) shades, for a typical operation ``r`` with two
already-placed predecessors, the primary frame, redundant frame,
forbidden frame and the resulting move frame.  :func:`render_frames`
regenerates that map from a real :class:`~repro.core.frames.FrameSet` and
the live grid:

====  =================================================
mark  meaning
====  =================================================
``.`` outside the primary frame
``R`` redundant frame (unopened FU instances)
``F`` forbidden frame (dependence violations)
``X`` occupied by another operation
``M`` move frame (placeable)
``*`` the position the Liapunov function selected
``K`` an already-placed predecessor of the operation
====  =================================================
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.frames import FrameSet
from repro.core.grid import GridPosition, PlacementGrid


def render_frames(
    frame: FrameSet,
    grid: PlacementGrid,
    chosen: Optional[GridPosition] = None,
    predecessors: Mapping[str, GridPosition] = (),
) -> str:
    """ASCII map of the four frames of one operation (Figure 2(b))."""
    table = frame.table
    columns = grid.columns(table)
    move_cells = {(p.x, p.y) for p in frame.mf}
    predecessor_cells: Dict[tuple, str] = {}
    if predecessors:
        for index, (name, position) in enumerate(sorted(predecessors.items()), 1):
            if position.table == table:
                predecessor_cells[(position.x, position.y)] = "K"

    lines = [
        f"Figure 2 — frames of operation {frame.node!r} in table {table!r}",
        f"PF rows {frame.pf_rows}, cols {frame.pf_cols}; "
        f"RF cols {frame.rf_cols}; FF rows <= {frame.ff_rows_before} "
        f"or >= {frame.ff_rows_after}"
        + (f"; chain rows {frame.chain_rows}" if frame.chain_rows else ""),
        "      " + "".join(f"x={x:<3}" for x in range(1, columns + 1)),
    ]
    lo_y, hi_y = frame.pf_rows
    for step in range(1, grid.cs + 1):
        cells = []
        for x in range(1, columns + 1):
            position = GridPosition(table, x, step)
            if (x, step) in predecessor_cells:
                mark = "K"
            elif chosen is not None and (chosen.x, chosen.y) == (x, step):
                mark = "*"
            elif not lo_y <= step <= hi_y:
                mark = "."
            elif (x, step) in move_cells:
                mark = "M"
            elif frame.in_rf(position):
                mark = "R"
            elif frame.in_ff(position):
                mark = "F"
            elif grid.occupants(table, x, step):
                mark = "X"
            else:
                mark = "?"
            cells.append(f"  {mark}  "[:5])
        lines.append(f"y={step:>3} " + "".join(cells))
    lines.append(
        "legend: .=outside PF  R=redundant  F=forbidden  X=occupied  "
        "M=move frame  *=selected  K=placed predecessor"
    )
    return "\n".join(lines)
