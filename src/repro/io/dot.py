"""Graphviz (DOT) export of DFGs and schedules."""

from __future__ import annotations

from typing import Optional

from repro.dfg.graph import DFG
from repro.dfg.ops import OP_SYMBOLS
from repro.schedule.types import Schedule


def _node_label(dfg: DFG, name: str) -> str:
    node = dfg.node(name)
    symbol = OP_SYMBOLS.get(node.kind, node.kind)
    label = f"{name}\\n{symbol}"
    if node.branch:
        arms = ",".join(
            f"{cond}:{'T' if arm else 'F'}" for cond, arm in node.branch
        )
        label += f"\\n[{arms}]"
    return label


def dfg_to_dot(dfg: DFG, name: Optional[str] = None) -> str:
    """Render a DFG as a DOT digraph (inputs as boxes, ops as circles)."""
    lines = [f'digraph "{name or dfg.name}" {{', "  rankdir=TB;"]
    for input_name in dfg.inputs:
        lines.append(f'  "in:{input_name}" [shape=box, label="{input_name}"];')
    for node in dfg:
        lines.append(f'  "{node.name}" [shape=circle, label="{_node_label(dfg, node.name)}"];')
    for node in dfg:
        for port in node.operands:
            if port.is_node:
                lines.append(f'  "{port.name}" -> "{node.name}";')
            elif port.is_input:
                lines.append(f'  "in:{port.name}" -> "{node.name}";')
            else:
                const = f"const:{port.value}"
                lines.append(
                    f'  "{const}" [shape=plaintext, label="{port.value}"];'
                )
                lines.append(f'  "{const}" -> "{node.name}";')
    for out_name, port in dfg.outputs.items():
        lines.append(f'  "out:{out_name}" [shape=doublecircle, label="{out_name}"];')
        if port.is_node:
            source = f'"{port.name}"'
        elif port.is_input:
            source = f'"in:{port.name}"'
        else:
            source = f'"const:{port.value}"'
        lines.append(f'  {source} -> "out:{out_name}";')
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: Schedule) -> str:
    """DOT rendering with operations ranked by their control step."""
    dfg = schedule.dfg
    lines = [f'digraph "{dfg.name}_schedule" {{', "  rankdir=TB;"]
    by_step = {}
    for name in dfg.node_names():
        by_step.setdefault(schedule.start(name), []).append(name)
    for step in sorted(by_step):
        members = " ".join(f'"{name}"' for name in by_step[step])
        lines.append(f"  {{ rank=same; {members} }}")
        for name in by_step[step]:
            lines.append(
                f'  "{name}" [label="{_node_label(dfg, name)}\\ncs{step}"];'
            )
    for node in dfg:
        for pred in node.predecessor_names():
            lines.append(f'  "{pred}" -> "{node.name}";')
    lines.append("}")
    return "\n".join(lines)
