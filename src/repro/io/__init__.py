"""Rendering and export utilities.

* :mod:`repro.io.dot` — Graphviz export of DFGs and schedules;
* :mod:`repro.io.text` — plain-text schedule and datapath tables;
* :mod:`repro.io.gridviz` — Figure-1-style placement-table rendering with
  a Liapunov move trajectory;
* :mod:`repro.io.frameviz` — Figure-2-style rendering of the PF/RF/FF/MF
  frames of one operation.
"""

from repro.io.dot import dfg_to_dot, schedule_to_dot
from repro.io.text import render_schedule, render_datapath
from repro.io.gridviz import render_grid, render_move
from repro.io.frameviz import render_frames
from repro.io.jsonio import (
    dfg_from_json,
    dfg_to_json,
    schedule_to_json,
    synthesis_to_json,
)
from repro.io.svg import frames_to_svg, schedule_to_svg

__all__ = [
    "dfg_to_dot",
    "schedule_to_dot",
    "render_schedule",
    "render_datapath",
    "render_grid",
    "render_move",
    "render_frames",
    "dfg_to_json",
    "dfg_from_json",
    "schedule_to_json",
    "synthesis_to_json",
    "schedule_to_svg",
    "frames_to_svg",
]
