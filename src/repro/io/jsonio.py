"""JSON serialisation of DFGs, schedules and synthesis results.

Round-trippable formats so designs and results can be stored, diffed and
exchanged:

* :func:`dfg_to_json` / :func:`dfg_from_json` — complete graph round trip;
* :func:`schedule_to_json` — schedule with FU usage (consumable without
  this library);
* :func:`synthesis_to_json` — the full MFSA result summary (ALUs,
  binding, registers, muxes, cost breakdown).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import DFGError
from repro.dfg.graph import DFG, Port
from repro.schedule.types import Schedule

FORMAT_VERSION = 1


def _port_to_obj(port: Port) -> Dict[str, Any]:
    if port.is_const:
        return {"const": port.value}
    if port.is_input:
        return {"input": port.name}
    return {"node": port.name}


def _port_from_obj(obj: Dict[str, Any]) -> Port:
    if "const" in obj:
        return Port.const(int(obj["const"]))
    if "input" in obj:
        return Port.input(obj["input"])
    if "node" in obj:
        return Port.node(obj["node"])
    raise DFGError(f"malformed port object: {obj!r}")


def dfg_to_json(dfg: DFG, indent: Optional[int] = 2) -> str:
    """Serialise a DFG to JSON text."""
    payload = {
        "format": "repro-dfg",
        "version": FORMAT_VERSION,
        "name": dfg.name,
        "inputs": list(dfg.inputs),
        "nodes": [
            {
                "name": node.name,
                "kind": node.kind,
                "operands": [_port_to_obj(p) for p in node.operands],
                "branch": [[cond, arm] for cond, arm in node.branch],
            }
            for node in dfg
        ],
        "outputs": {
            name: _port_to_obj(port) for name, port in dfg.outputs.items()
        },
    }
    return json.dumps(payload, indent=indent)


def dfg_from_json(text: str) -> DFG:
    """Reconstruct a DFG from :func:`dfg_to_json` output."""
    payload = json.loads(text)
    if payload.get("format") != "repro-dfg":
        raise DFGError("not a repro-dfg JSON document")
    if payload.get("version") != FORMAT_VERSION:
        raise DFGError(
            f"unsupported repro-dfg version {payload.get('version')!r}"
        )
    dfg = DFG(payload.get("name", "dfg"))
    for input_name in payload.get("inputs", []):
        dfg.add_input(input_name)
    for node in payload.get("nodes", []):
        dfg.add_op(
            node["kind"],
            [_port_from_obj(obj) for obj in node["operands"]],
            name=node["name"],
            branch=tuple((cond, bool(arm)) for cond, arm in node.get("branch", [])),
        )
    for out_name, obj in payload.get("outputs", {}).items():
        dfg.set_output(out_name, _port_from_obj(obj))
    dfg.validate()
    return dfg


def schedule_to_json(schedule: Schedule, indent: Optional[int] = 2) -> str:
    """Serialise a schedule (one-way; includes derived metrics)."""
    payload = {
        "format": "repro-schedule",
        "version": FORMAT_VERSION,
        "dfg": schedule.dfg.name,
        "cs": schedule.cs,
        "makespan": schedule.makespan(),
        "latency_l": schedule.latency_l,
        "pipelined_kinds": sorted(schedule.pipelined_kinds),
        "starts": dict(sorted(schedule.starts.items())),
        "fu_usage": schedule.fu_usage(),
    }
    return json.dumps(payload, indent=indent)


def synthesis_to_json(result, indent: Optional[int] = 2) -> str:
    """Serialise an :class:`~repro.core.mfsa.MFSAResult` summary."""
    datapath = result.datapath
    cost = datapath.cost_breakdown()
    payload = {
        "format": "repro-synthesis",
        "version": FORMAT_VERSION,
        "dfg": result.schedule.dfg.name,
        "cs": result.schedule.cs,
        "style": result.style,
        "starts": dict(sorted(result.schedule.starts.items())),
        "binding": {
            name: {"cell": key[0], "instance": key[1]}
            for name, key in sorted(datapath.binding.items())
        },
        "alus": [
            {
                "cell": instance.cell.name,
                "label": instance.cell.label(),
                "instance": instance.index,
                "ops": list(instance.ops),
                "mux_l1": list(instance.mux.l1),
                "mux_l2": list(instance.mux.l2),
            }
            for _key, instance in sorted(datapath.instances.items())
        ],
        "registers": {
            f"r{index}": list(datapath.registers.values_in(index))
            for index in range(datapath.registers.count)
        },
        "cost": {
            "alu": cost.alu,
            "registers": cost.registers,
            "mux": cost.mux,
            "total": cost.total,
        },
        "metrics": {
            "register_count": datapath.register_count(),
            "mux_count": datapath.mux_count(),
            "mux_inputs": datapath.mux_inputs(),
        },
    }
    return json.dumps(payload, indent=indent)
