"""Dependency-free SVG rendering of schedules and placement grids.

Two views:

* :func:`schedule_to_svg` — a Gantt chart: one row per FU instance (from
  the MFS placement or an explicit binding), one column per control step,
  operation boxes labelled and coloured by kind;
* :func:`frames_to_svg` — Figure 2 as a proper vector image: PF/RF/FF/MF
  cells shaded, placed predecessors marked.

Pure string generation; the files open in any browser.
"""

from __future__ import annotations

import html
from typing import List, Mapping, Optional, Tuple

from repro.core.frames import FrameSet
from repro.core.grid import GridPosition, PlacementGrid
from repro.dfg.ops import OP_SYMBOLS
from repro.schedule.types import Schedule

CELL_W = 72
CELL_H = 30
LABEL_W = 130
HEADER_H = 34

#: Colour per operation kind (hand-picked, colour-blind-reasonable).
KIND_COLOURS: Mapping[str, str] = {
    "mul": "#c6dbef",
    "div": "#9ecae1",
    "add": "#c7e9c0",
    "sub": "#a1d99b",
    "lt": "#fdd0a2",
    "gt": "#fdae6b",
    "eq": "#fd8d3c",
    "and": "#dadaeb",
    "or": "#bcbddc",
    "xor": "#9e9ac8",
}
DEFAULT_COLOUR = "#eeeeee"


def _svg_header(width: int, height: int, title: str) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="12">',
        f"<title>{html.escape(title)}</title>",
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def _box(x, y, w, h, fill, stroke="#555", extra="") -> str:
    return (
        f'<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="{fill}" '
        f'stroke="{stroke}" {extra}/>'
    )


def _text(x, y, content, anchor="middle", size=12) -> str:
    return (
        f'<text x="{x}" y="{y}" text-anchor="{anchor}" '
        f'font-size="{size}">{html.escape(str(content))}</text>'
    )


def schedule_to_svg(
    schedule: Schedule,
    binding: Optional[Mapping[str, Tuple[str, int]]] = None,
    title: Optional[str] = None,
) -> str:
    """Gantt chart of a schedule; rows are FU instances.

    ``binding`` defaults to a greedy packing (the same one the library
    uses to build datapaths from bare schedules).
    """
    if binding is None:
        from repro.allocation.binding import bind_functional_units

        binding = bind_functional_units(schedule)

    rows: List[Tuple[str, int]] = sorted(set(binding.values()))
    row_index = {key: i for i, key in enumerate(rows)}
    width = LABEL_W + schedule.cs * CELL_W + 10
    height = HEADER_H + len(rows) * CELL_H + 10

    parts = _svg_header(
        width, height, title or f"schedule of {schedule.dfg.name}"
    )
    for step in range(1, schedule.cs + 1):
        x = LABEL_W + (step - 1) * CELL_W
        parts.append(_text(x + CELL_W / 2, HEADER_H - 12, f"cs{step}"))
        parts.append(
            f'<line x1="{x}" y1="{HEADER_H}" x2="{x}" '
            f'y2="{height - 10}" stroke="#ddd"/>'
        )
    for key, index in row_index.items():
        y = HEADER_H + index * CELL_H
        parts.append(
            _text(6, y + CELL_H * 0.65, f"{key[0]}#{key[1]}", anchor="start")
        )
    for name, key in sorted(binding.items()):
        node = schedule.dfg.node(name)
        start = schedule.start(name)
        latency = schedule.timing.latency(node.kind)
        span = 1 if node.kind in schedule.pipelined_kinds else latency
        x = LABEL_W + (start - 1) * CELL_W
        y = HEADER_H + row_index[key] * CELL_H + 2
        colour = KIND_COLOURS.get(node.kind, DEFAULT_COLOUR)
        parts.append(_box(x + 1, y, span * CELL_W - 2, CELL_H - 4, colour))
        symbol = OP_SYMBOLS.get(node.kind, "?")
        parts.append(
            _text(
                x + span * CELL_W / 2,
                y + CELL_H * 0.6,
                f"{name} ({symbol})",
            )
        )
    parts.append("</svg>")
    return "\n".join(parts)


FRAME_COLOURS = {
    "outside": "#ffffff",
    "rf": "#f2e5bf",
    "ff": "#f4c7c3",
    "occupied": "#d9d9d9",
    "mf": "#c7e9c0",
    "chosen": "#74c476",
    "pred": "#9ecae1",
}


def frames_to_svg(
    frame: FrameSet,
    grid: PlacementGrid,
    chosen: Optional[GridPosition] = None,
    predecessors: Mapping[str, GridPosition] = {},
) -> str:
    """Figure 2 as an SVG frame map."""
    columns = grid.columns(frame.table)
    width = LABEL_W + columns * CELL_W + 10
    height = HEADER_H + grid.cs * CELL_H + 58

    parts = _svg_header(
        width, height, f"frames of {frame.node} in {frame.table}"
    )
    move_cells = {(p.x, p.y) for p in frame.mf}
    pred_cells = {
        (pos.x, pos.y)
        for pos in predecessors.values()
        if pos.table == frame.table
    }
    lo_y, hi_y = frame.pf_rows
    for x_index in range(1, columns + 1):
        parts.append(
            _text(
                LABEL_W + (x_index - 1) * CELL_W + CELL_W / 2,
                HEADER_H - 12,
                f"x={x_index}",
            )
        )
    for step in range(1, grid.cs + 1):
        parts.append(
            _text(6, HEADER_H + (step - 1) * CELL_H + CELL_H * 0.65,
                  f"y={step}", anchor="start")
        )
        for x_index in range(1, columns + 1):
            position = GridPosition(frame.table, x_index, step)
            if (x_index, step) in pred_cells:
                kind = "pred"
            elif chosen is not None and (chosen.x, chosen.y) == (
                x_index,
                step,
            ):
                kind = "chosen"
            elif not lo_y <= step <= hi_y:
                kind = "outside"
            elif (x_index, step) in move_cells:
                kind = "mf"
            elif frame.in_rf(position):
                kind = "rf"
            elif frame.in_ff(position):
                kind = "ff"
            elif grid.occupants(frame.table, x_index, step):
                kind = "occupied"
            else:
                kind = "outside"
            parts.append(
                _box(
                    LABEL_W + (x_index - 1) * CELL_W,
                    HEADER_H + (step - 1) * CELL_H,
                    CELL_W,
                    CELL_H,
                    FRAME_COLOURS[kind],
                    stroke="#999",
                )
            )
    legend = [
        ("move frame", "mf"),
        ("selected", "chosen"),
        ("redundant", "rf"),
        ("forbidden", "ff"),
        ("occupied", "occupied"),
        ("predecessor", "pred"),
    ]
    y = HEADER_H + grid.cs * CELL_H + 18
    x = 10
    for label, kind in legend:
        parts.append(_box(x, y, 14, 14, FRAME_COLOURS[kind], stroke="#999"))
        parts.append(_text(x + 20, y + 11, label, anchor="start", size=11))
        x += 20 + 8 * len(label) + 24
    parts.append("</svg>")
    return "\n".join(parts)
