"""Dependency-free SVG rendering of schedules and placement grids.

Views:

* :func:`schedule_to_svg` — a Gantt chart: one row per FU instance (from
  the MFS placement or an explicit binding), one column per control step,
  operation boxes labelled and coloured by kind;
* :func:`gantt_to_svg` — the generic Gantt renderer behind it, fed with
  bare ``(row, start, span, label, kind)`` cells (the trace run-report
  rebuilds schedules from JSONL commit events through this);
* :func:`line_chart_to_svg` — a minimal polyline chart (the trace
  report's Liapunov descent curve);
* :func:`heat_strip_to_svg` — a one-row heat strip (move-frame occupancy
  per scheduling iteration);
* :func:`frames_to_svg` — Figure 2 as a proper vector image: PF/RF/FF/MF
  cells shaded, placed predecessors marked.

Pure string generation; the files open in any browser.
"""

from __future__ import annotations

import html
from typing import List, Mapping, Optional, Tuple

from repro.core.frames import FrameSet
from repro.core.grid import GridPosition, PlacementGrid
from repro.dfg.ops import OP_SYMBOLS
from repro.schedule.types import Schedule

CELL_W = 72
CELL_H = 30
LABEL_W = 130
HEADER_H = 34

#: Colour per operation kind (hand-picked, colour-blind-reasonable).
KIND_COLOURS: Mapping[str, str] = {
    "mul": "#c6dbef",
    "div": "#9ecae1",
    "add": "#c7e9c0",
    "sub": "#a1d99b",
    "lt": "#fdd0a2",
    "gt": "#fdae6b",
    "eq": "#fd8d3c",
    "and": "#dadaeb",
    "or": "#bcbddc",
    "xor": "#9e9ac8",
}
DEFAULT_COLOUR = "#eeeeee"


def _svg_header(width: int, height: int, title: str) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="12">',
        f"<title>{html.escape(title)}</title>",
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def _box(x, y, w, h, fill, stroke="#555", extra="") -> str:
    return (
        f'<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="{fill}" '
        f'stroke="{stroke}" {extra}/>'
    )


def _text(x, y, content, anchor="middle", size=12) -> str:
    return (
        f'<text x="{x}" y="{y}" text-anchor="{anchor}" '
        f'font-size="{size}">{html.escape(str(content))}</text>'
    )


def gantt_to_svg(
    cells: List[Tuple[str, int, int, str, str]],
    cs: int,
    title: str,
) -> str:
    """Generic Gantt chart from bare cells.

    Each cell is ``(row, start, span, label, kind)`` — row label, 1-based
    start step, occupied span in steps, box text, operation kind (for the
    colour map).  Rows appear in sorted order.
    """
    rows = sorted({cell[0] for cell in cells})
    row_index = {key: i for i, key in enumerate(rows)}
    width = LABEL_W + cs * CELL_W + 10
    height = HEADER_H + len(rows) * CELL_H + 10

    parts = _svg_header(width, height, title)
    for step in range(1, cs + 1):
        x = LABEL_W + (step - 1) * CELL_W
        parts.append(_text(x + CELL_W / 2, HEADER_H - 12, f"cs{step}"))
        parts.append(
            f'<line x1="{x}" y1="{HEADER_H}" x2="{x}" '
            f'y2="{height - 10}" stroke="#ddd"/>'
        )
    for key, index in row_index.items():
        y = HEADER_H + index * CELL_H
        parts.append(_text(6, y + CELL_H * 0.65, key, anchor="start"))
    for row, start, span, label, kind in sorted(cells):
        x = LABEL_W + (start - 1) * CELL_W
        y = HEADER_H + row_index[row] * CELL_H + 2
        colour = KIND_COLOURS.get(kind, DEFAULT_COLOUR)
        parts.append(_box(x + 1, y, span * CELL_W - 2, CELL_H - 4, colour))
        parts.append(_text(x + span * CELL_W / 2, y + CELL_H * 0.6, label))
    parts.append("</svg>")
    return "\n".join(parts)


def schedule_to_svg(
    schedule: Schedule,
    binding: Optional[Mapping[str, Tuple[str, int]]] = None,
    title: Optional[str] = None,
) -> str:
    """Gantt chart of a schedule; rows are FU instances.

    ``binding`` defaults to a greedy packing (the same one the library
    uses to build datapaths from bare schedules).
    """
    if binding is None:
        from repro.allocation.binding import bind_functional_units

        binding = bind_functional_units(schedule)

    cells: List[Tuple[str, int, int, str, str]] = []
    for name, key in sorted(binding.items()):
        node = schedule.dfg.node(name)
        latency = schedule.timing.latency(node.kind)
        span = 1 if node.kind in schedule.pipelined_kinds else latency
        symbol = OP_SYMBOLS.get(node.kind, "?")
        cells.append(
            (
                f"{key[0]}#{key[1]}",
                schedule.start(name),
                span,
                f"{name} ({symbol})",
                node.kind,
            )
        )
    return gantt_to_svg(
        cells, schedule.cs, title or f"schedule of {schedule.dfg.name}"
    )


CHART_W = 560
CHART_H = 220
CHART_PAD = 42

#: Series colours for :func:`line_chart_to_svg` (assigned in order).
SERIES_COLOURS = ("#3182bd", "#e6550d", "#31a354", "#756bb1")


def line_chart_to_svg(
    series: List[Tuple[str, List[Tuple[float, float]]]],
    title: str,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Minimal polyline chart: ``series`` is ``[(label, [(x, y), ...])]``.

    Designed for the trace report's Liapunov-descent curve; axes are
    linear with min/max tick labels only, markers at every point.
    """
    points = [p for _label, pts in series for p in pts]
    if not points:
        return "\n".join(_svg_header(CHART_W, CHART_H, title) + ["</svg>"])
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    plot_w = CHART_W - 2 * CHART_PAD
    plot_h = CHART_H - 2 * CHART_PAD

    def px(x: float) -> float:
        return round(CHART_PAD + (x - x_lo) / x_span * plot_w, 1)

    def py(y: float) -> float:
        return round(CHART_H - CHART_PAD - (y - y_lo) / y_span * plot_h, 1)

    parts = _svg_header(CHART_W, CHART_H, title)
    parts.append(_text(CHART_W / 2, 16, title, size=13))
    axis = CHART_H - CHART_PAD
    parts.append(
        f'<line x1="{CHART_PAD}" y1="{axis}" x2="{CHART_W - CHART_PAD}" '
        f'y2="{axis}" stroke="#555"/>'
    )
    parts.append(
        f'<line x1="{CHART_PAD}" y1="{CHART_PAD}" x2="{CHART_PAD}" '
        f'y2="{axis}" stroke="#555"/>'
    )
    parts.append(_text(CHART_PAD, axis + 16, _fmt_tick(x_lo), size=10))
    parts.append(
        _text(CHART_W - CHART_PAD, axis + 16, _fmt_tick(x_hi), size=10)
    )
    parts.append(
        _text(CHART_PAD - 6, axis + 3, _fmt_tick(y_lo), anchor="end", size=10)
    )
    parts.append(
        _text(CHART_PAD - 6, CHART_PAD + 3, _fmt_tick(y_hi), anchor="end", size=10)
    )
    if x_label:
        parts.append(_text(CHART_W / 2, CHART_H - 8, x_label, size=11))
    if y_label:
        parts.append(
            f'<text x="12" y="{CHART_H / 2}" text-anchor="middle" '
            f'font-size="11" transform="rotate(-90 12 {CHART_H / 2})">'
            f"{html.escape(y_label)}</text>"
        )
    for index, (label, pts) in enumerate(series):
        colour = SERIES_COLOURS[index % len(SERIES_COLOURS)]
        if len(pts) > 1:
            path = " ".join(f"{px(x)},{py(y)}" for x, y in pts)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{colour}" '
                f'stroke-width="1.5"/>'
            )
        for x, y in pts:
            parts.append(
                f'<circle cx="{px(x)}" cy="{py(y)}" r="2.5" fill="{colour}"/>'
            )
        parts.append(
            _text(
                CHART_W - CHART_PAD,
                CHART_PAD + 14 * index,
                label,
                anchor="end",
                size=10,
            )
        )
    parts.append("</svg>")
    return "\n".join(parts)


def _fmt_tick(value: float) -> str:
    return f"{value:g}"


STRIP_CELL = 14


def heat_strip_to_svg(
    values: List[int],
    title: str,
    labels: Optional[List[str]] = None,
) -> str:
    """One-row heat strip: cell ``i`` shaded by ``values[i]`` (0 = white).

    Used for the move-frame occupancy strip of the trace report — one
    cell per scheduling iteration, darker green for larger move frames;
    ``labels`` become ``<title>`` hover tooltips.
    """
    peak = max(values, default=0) or 1
    width = 2 * CHART_PAD + max(len(values), 1) * STRIP_CELL
    height = 64
    parts = _svg_header(width, height, title)
    parts.append(_text(width / 2, 14, title, size=12))
    for index, value in enumerate(values):
        level = value / peak
        # white → mid green, quantised so output stays byte-stable
        red = int(255 - 139 * level)
        green = int(255 - 59 * level)
        blue = int(255 - 137 * level)
        x = CHART_PAD + index * STRIP_CELL
        tooltip = (
            f"<title>{html.escape(labels[index])}</title>"
            if labels is not None
            else ""
        )
        parts.append(
            f'<rect x="{x}" y="24" width="{STRIP_CELL}" height="{STRIP_CELL}"'
            f' fill="rgb({red},{green},{blue})" stroke="#999">{tooltip}</rect>'
        )
    parts.append(
        _text(width / 2, 56, f"peak |MF| = {peak if values else 0}", size=10)
    )
    parts.append("</svg>")
    return "\n".join(parts)


FRAME_COLOURS = {
    "outside": "#ffffff",
    "rf": "#f2e5bf",
    "ff": "#f4c7c3",
    "occupied": "#d9d9d9",
    "mf": "#c7e9c0",
    "chosen": "#74c476",
    "pred": "#9ecae1",
}


def frames_to_svg(
    frame: FrameSet,
    grid: PlacementGrid,
    chosen: Optional[GridPosition] = None,
    predecessors: Mapping[str, GridPosition] = {},
) -> str:
    """Figure 2 as an SVG frame map."""
    columns = grid.columns(frame.table)
    width = LABEL_W + columns * CELL_W + 10
    height = HEADER_H + grid.cs * CELL_H + 58

    parts = _svg_header(
        width, height, f"frames of {frame.node} in {frame.table}"
    )
    move_cells = {(p.x, p.y) for p in frame.mf}
    pred_cells = {
        (pos.x, pos.y)
        for pos in predecessors.values()
        if pos.table == frame.table
    }
    lo_y, hi_y = frame.pf_rows
    for x_index in range(1, columns + 1):
        parts.append(
            _text(
                LABEL_W + (x_index - 1) * CELL_W + CELL_W / 2,
                HEADER_H - 12,
                f"x={x_index}",
            )
        )
    for step in range(1, grid.cs + 1):
        parts.append(
            _text(6, HEADER_H + (step - 1) * CELL_H + CELL_H * 0.65,
                  f"y={step}", anchor="start")
        )
        for x_index in range(1, columns + 1):
            position = GridPosition(frame.table, x_index, step)
            if (x_index, step) in pred_cells:
                kind = "pred"
            elif chosen is not None and (chosen.x, chosen.y) == (
                x_index,
                step,
            ):
                kind = "chosen"
            elif not lo_y <= step <= hi_y:
                kind = "outside"
            elif (x_index, step) in move_cells:
                kind = "mf"
            elif frame.in_rf(position):
                kind = "rf"
            elif frame.in_ff(position):
                kind = "ff"
            elif grid.occupants(frame.table, x_index, step):
                kind = "occupied"
            else:
                kind = "outside"
            parts.append(
                _box(
                    LABEL_W + (x_index - 1) * CELL_W,
                    HEADER_H + (step - 1) * CELL_H,
                    CELL_W,
                    CELL_H,
                    FRAME_COLOURS[kind],
                    stroke="#999",
                )
            )
    legend = [
        ("move frame", "mf"),
        ("selected", "chosen"),
        ("redundant", "rf"),
        ("forbidden", "ff"),
        ("occupied", "occupied"),
        ("predecessor", "pred"),
    ]
    y = HEADER_H + grid.cs * CELL_H + 18
    x = 10
    for label, kind in legend:
        parts.append(_box(x, y, 14, 14, FRAME_COLOURS[kind], stroke="#999"))
        parts.append(_text(x + 20, y + 11, label, anchor="start", size=11))
        x += 20 + 8 * len(label) + 24
    parts.append("</svg>")
    return "\n".join(parts)
