"""Simulation substrate.

* :mod:`repro.sim.evaluator` — reference (untimed) evaluation of a DFG on
  concrete integer inputs;
* :mod:`repro.sim.executor` — cycle-accurate simulation of a scheduled and
  allocated datapath, used as the functional-equivalence oracle: for any
  valid schedule + binding, the executor must produce exactly the
  evaluator's outputs.
"""

from repro.sim.evaluator import evaluate_dfg
from repro.sim.executor import (
    ExecutionTrace,
    execute_datapath,
    execute_schedule,
    verify_equivalence,
)
from repro.sim.vcd import trace_to_vcd, write_vcd

__all__ = [
    "evaluate_dfg",
    "execute_datapath",
    "execute_schedule",
    "verify_equivalence",
    "ExecutionTrace",
    "trace_to_vcd",
    "write_vcd",
]
