"""RTL-level simulation driven purely by the control path.

:func:`execute_controller` runs a datapath the way the *hardware* would:
it looks only at the FSM tables (``alu_functions``, ``mux_selects``,
``register_loads``), the mux input lists and the register file — never at
the DFG's operand wiring.  If its outputs match the reference evaluator,
the control path (and therefore the structural Verilog derived from the
same tables) is semantically correct end to end.

The DFG is consulted for exactly one thing: ordering same-state
combinational chains (chained operations across ALUs must evaluate in
dependency order, just as signals settle in hardware).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.errors import SimulationError
from repro.allocation.datapath import Datapath
from repro.rtl.controller import build_controller
from repro.sim.evaluator import evaluate_dfg
from repro.sim.executor import ExecutionTrace, StepEvent

_FUNCTIONS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 31),
    "shr": lambda a, b: a >> (b & 31),
    "eq": lambda a, b: int(a == b),
    "lt": lambda a, b: int(a < b),
    "gt": lambda a, b: int(a > b),
    "neg": lambda a, b: -a,
    "not": lambda a, b: ~a,
    "move": lambda a, b: a,
    "min": lambda a, b: min(a, b),
    "max": lambda a, b: max(a, b),
}


def _divide(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


_FUNCTIONS["div"] = _divide


def execute_controller(
    datapath: Datapath, inputs: Mapping[str, int]
) -> ExecutionTrace:
    """Simulate using only the FSM tables + mux lists + register file."""
    schedule = datapath.schedule
    dfg = schedule.dfg
    controller = build_controller(datapath)

    registers: Dict[int, int] = {}
    alu_out: Dict[Tuple[str, int], int] = {}
    # Multi-cycle operations compute at their start state but their result
    # is captured at their end state; keyed by (instance, end step) so a
    # structurally pipelined unit may hold several in-flight results.
    held_out: Dict[Tuple[Tuple[str, int], int], int] = {}
    events: List[StepEvent] = []
    register_writes: List[Tuple[int, int, str, int]] = []

    def read_signal(signal: str, step: int) -> int:
        if signal.startswith("#"):
            return int(signal[1:])
        if signal.startswith("in:"):
            name = signal[3:]
            registered = datapath.registers.assignment.get(signal)
            if registered is None or step == 1:
                return inputs[name]
            return registers[registered]
        life = datapath.lifetimes[signal]
        if not life.needs_register or step == life.birth:
            # combinational: the producing ALU's current output
            producer = signal[3:]
            key = datapath.binding[producer]
            if key not in alu_out:
                raise SimulationError(
                    f"combinational read of {signal!r} before its ALU "
                    f"settled at step {step}"
                )
            return alu_out[key]
        register = datapath.registers.assignment[signal]
        if register not in registers:
            raise SimulationError(
                f"register r{register} read before first load (step {step})"
            )
        return registers[register]

    topo_rank = {name: i for i, name in enumerate(dfg.topological_order())}

    for step in range(1, schedule.cs + 1):
        state = controller.state(step)
        alu_out = {}
        # Instances whose function is merely *held* for an in-flight
        # multi-cycle operation recompute the same value (operands are
        # register-stable by the lifetime rule); only instances starting
        # an operation this step need evaluating, in combinational
        # settling order (chained chains resolve dependency-first).
        def starters(key) -> list:
            return [
                op
                for op in datapath.instances[key].ops
                if schedule.start(op) == step
            ]

        active = sorted(
            (
                (key, kind)
                for key, kind in state.alu_functions.items()
                if starters(key)
            ),
            key=lambda item: min(topo_rank[op] for op in starters(item[0])),
        )
        for key, kind in active:
            instance = datapath.instances[key]
            operands: List[int] = []
            for port, signals in ((1, instance.mux.l1), (2, instance.mux.l2)):
                if not signals:
                    continue
                if len(signals) == 1:
                    signal = signals[0]
                else:
                    select = state.mux_selects.get((key[0], key[1], port))
                    if select is None:
                        raise SimulationError(
                            f"mux ({key}, port {port}) has no select in "
                            f"state {step}"
                        )
                    signal = signals[select]
                operands.append(read_signal(signal, step))
            a = operands[0]
            b = operands[1] if len(operands) > 1 else 0
            alu_out[key] = _FUNCTIONS[kind](a, b)
            ops_here = [
                op
                for op in instance.ops
                if schedule.start(op) == step
            ]
            if ops_here:
                held_out[(key, schedule.end(ops_here[0]))] = alu_out[key]
            events.append(
                StepEvent(
                    step=step,
                    op=ops_here[0] if ops_here else "?",
                    kind=kind,
                    instance=key,
                    operands=tuple(operands),
                    result=alu_out[key],
                )
            )
        # end of state: register loads
        if step == 1:
            for signal, register in datapath.registers.assignment.items():
                if signal.startswith("in:"):
                    registers[register] = inputs[signal[3:]]
                    register_writes.append((0, register, signal, registers[register]))
        for register in state.register_loads:
            signal = _value_loaded(datapath, register, step)
            producer = signal[3:]
            key = datapath.binding[producer]
            held = held_out.get((key, step))
            if held is None:
                raise SimulationError(
                    f"ALU {key} holds no value for r{register} at step {step}"
                )
            registers[register] = held
            register_writes.append(
                (step, register, signal, registers[register])
            )

    outputs: Dict[str, int] = {}
    for out_name, port in dfg.outputs.items():
        if port.is_const:
            outputs[out_name] = port.value
        elif port.is_input:
            outputs[out_name] = inputs[port.name]
        else:
            signal = port.signal_name()
            register = datapath.registers.assignment.get(signal)
            if register is None:
                raise SimulationError(
                    f"output {out_name!r} has no register to persist in"
                )
            outputs[out_name] = registers[register]
    return ExecutionTrace(
        outputs=outputs, events=events, register_writes=register_writes
    )


def _value_loaded(datapath: Datapath, register: int, step: int) -> str:
    """Which signal loads into ``register`` at the end of ``step``."""
    for signal, assigned in datapath.registers.assignment.items():
        if assigned != register or not signal.startswith("op:"):
            continue
        if datapath.lifetimes[signal].birth == step:
            return signal
    raise SimulationError(
        f"no value is born into r{register} at step {step}"
    )


def verify_controller_equivalence(
    datapath: Datapath, inputs: Mapping[str, int]
) -> ExecutionTrace:
    """Run the control-path simulation and check against the evaluator."""
    trace = execute_controller(datapath, inputs)
    reference = evaluate_dfg(
        datapath.schedule.dfg, datapath.schedule.timing.ops, inputs
    )
    for out_name in datapath.schedule.dfg.outputs:
        if trace.outputs[out_name] != reference[out_name]:
            raise SimulationError(
                f"output {out_name!r}: controller-driven simulation gives "
                f"{trace.outputs[out_name]}, reference {reference[out_name]}"
            )
    return trace
