"""Cycle-accurate execution of scheduled / allocated designs.

Two entry points:

* :func:`execute_schedule` — runs a bare :class:`Schedule` step by step,
  checking that every operand value exists before it is read (a timing
  oracle for MFS results);
* :func:`execute_datapath` — runs a full :class:`Datapath` (MFSA result):
  operations execute on their bound ALU instance, operands travel through
  the instance's optimised multiplexer ports, and intermediate values live
  in their left-edge-allocated registers.  The simulator *verifies the
  hardware* as it goes: reading a stale or clobbered register, routing a
  signal through a mux port that does not carry it, or running an
  operation on an incapable ALU all raise :class:`SimulationError`.

For any valid schedule + binding the outputs must equal
:func:`repro.sim.evaluator.evaluate_dfg` — the library's end-to-end
functional-equivalence oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError
from repro.dfg.graph import DFG, Port
from repro.allocation.datapath import Datapath
from repro.schedule.types import Schedule
from repro.sim.evaluator import evaluate_dfg


@dataclass
class StepEvent:
    """One operation completing during the simulation."""

    step: int
    op: str
    kind: str
    instance: Optional[Tuple[str, int]]
    operands: Tuple[int, ...]
    result: int


@dataclass
class ExecutionTrace:
    """Full record of a simulation run."""

    outputs: Dict[str, int]
    events: List[StepEvent] = field(default_factory=list)
    register_writes: List[Tuple[int, int, str, int]] = field(default_factory=list)

    def result(self, name: str) -> int:
        """Value of primary output ``name``."""
        return self.outputs[name]


def _operand_values(
    dfg: DFG,
    name: str,
    inputs: Mapping[str, int],
    produced: Mapping[str, int],
    available_at: Mapping[str, int],
    read_step: int,
) -> Tuple[int, ...]:
    node = dfg.node(name)
    values = []
    for port in node.operands:
        if port.is_const:
            values.append(port.value)
        elif port.is_input:
            values.append(inputs[port.name])
        else:
            if port.name not in produced:
                raise SimulationError(
                    f"{name!r} at step {read_step} reads {port.name!r} "
                    f"before it is produced"
                )
            if available_at[port.name] > read_step:
                raise SimulationError(
                    f"{name!r} at step {read_step} reads {port.name!r}, "
                    f"which is only ready after step {available_at[port.name]}"
                )
            values.append(produced[port.name])
    return tuple(values)


def execute_schedule(
    schedule: Schedule, inputs: Mapping[str, int]
) -> ExecutionTrace:
    """Simulate a bare schedule (no binding) step by step.

    A value produced by a node finishing at step ``e`` becomes readable at
    step ``e + 1`` — or at ``e`` itself when chaining is enabled (§5.4),
    since the schedule validator has already certified the chain delays.
    """
    dfg, timing = schedule.dfg, schedule.timing
    ops = timing.ops
    produced: Dict[str, int] = {}
    available_at: Dict[str, int] = {}
    events: List[StepEvent] = []

    topo_rank = {name: i for i, name in enumerate(dfg.topological_order())}
    by_start: Dict[int, List[str]] = {}
    for name in dfg.node_names():
        by_start.setdefault(schedule.start(name), []).append(name)

    for step in range(1, schedule.cs + 1):
        # Within a step, chained operations must evaluate in dependency order.
        for name in sorted(by_start.get(step, []), key=topo_rank.__getitem__):
            node = dfg.node(name)
            operands = _operand_values(
                dfg, name, inputs, produced, available_at, step
            )
            result = ops.spec(node.kind).evaluate(*operands)
            end = schedule.end(name)
            produced[name] = result
            available_at[name] = end if timing.chaining else end + 1
            events.append(
                StepEvent(
                    step=step,
                    op=name,
                    kind=node.kind,
                    instance=None,
                    operands=operands,
                    result=result,
                )
            )

    outputs: Dict[str, int] = {}
    for out_name, port in dfg.outputs.items():
        if port.is_const:
            outputs[out_name] = port.value
        elif port.is_input:
            outputs[out_name] = inputs[port.name]
        else:
            outputs[out_name] = produced[port.name]
    return ExecutionTrace(outputs=outputs, events=events)


def execute_datapath(
    datapath: Datapath, inputs: Mapping[str, int]
) -> ExecutionTrace:
    """Cycle-accurate simulation of an allocated datapath.

    Models the three structural resources MFSA allocates and verifies each
    against the data actually flowing:

    * **ALUs** — every operation must run on an instance whose cell
      implements its kind;
    * **multiplexers** — each operand's signal must appear on the mux port
      the input-list optimiser routed it to;
    * **registers** — values are written at birth and read at consumption;
      reading a register that meanwhile holds a different value means the
      left-edge allocation was wrong and raises.
    """
    schedule = datapath.schedule
    dfg, timing = schedule.dfg, schedule.timing
    ops = timing.ops

    produced: Dict[str, int] = {}
    available_at: Dict[str, int] = {}
    register_file: Dict[int, Tuple[str, int]] = {}
    events: List[StepEvent] = []
    register_writes: List[Tuple[int, int, str, int]] = []
    # Register writes land at the producer's end step and become visible
    # the following step; queueing them keeps a value readable through the
    # step in which its register is handed over to a successor value.
    pending_writes: Dict[int, List[Tuple[int, str, int]]] = {}

    def apply_writes_before(step: int) -> None:
        for end in sorted(list(pending_writes)):
            if end < step:
                for register, signal, value in pending_writes.pop(end):
                    register_file[register] = (signal, value)
                    register_writes.append((end, register, signal, value))

    topo_rank = {name: i for i, name in enumerate(dfg.topological_order())}
    by_start: Dict[int, List[str]] = {}
    for name in dfg.node_names():
        by_start.setdefault(schedule.start(name), []).append(name)

    def read_value(port: Port, consumer: str, step: int) -> int:
        if port.is_const:
            return port.value
        if port.is_input:
            return inputs[port.name]
        producer = port.name
        if producer not in produced:
            raise SimulationError(
                f"{consumer!r} at step {step} reads {producer!r} before "
                f"it is produced"
            )
        if available_at[producer] > step:
            raise SimulationError(
                f"{consumer!r} at step {step} reads {producer!r}, ready "
                f"only after step {available_at[producer]}"
            )
        signal = f"op:{producer}"
        life = datapath.lifetimes.get(signal)
        if life is not None and life.needs_register and step > life.birth:
            register = datapath.registers.assignment[signal]
            holder, value = register_file.get(register, (None, None))
            if holder != signal:
                raise SimulationError(
                    f"register r{register} holds {holder!r} at step {step}, "
                    f"but {consumer!r} expects {signal!r}"
                )
            return value
        return produced[producer]

    def check_mux_routing(name: str) -> None:
        node = dfg.node(name)
        instance = datapath.instance_of(name)
        if not instance.cell.can_execute(node.kind):
            raise SimulationError(
                f"{name!r} ({node.kind}) runs on incapable ALU "
                f"{instance.label()}"
            )
        signals = node.operand_names()
        for position, signal in enumerate(signals):
            if len(signals) == 1:
                port_lists = (instance.mux.l1,)
            else:
                port = instance.mux.port_of(name, textual_left=(position == 0))
                port_lists = (instance.mux.l1 if port == 1 else instance.mux.l2,)
            if all(signal not in port_list for port_list in port_lists):
                raise SimulationError(
                    f"signal {signal!r} of {name!r} is not wired to its mux "
                    f"port on {instance.label()}"
                )

    for step in range(1, schedule.cs + 1):
        apply_writes_before(step)
        for name in sorted(by_start.get(step, []), key=topo_rank.__getitem__):
            node = dfg.node(name)
            check_mux_routing(name)
            operands = tuple(
                read_value(port, name, step) for port in node.operands
            )
            result = ops.spec(node.kind).evaluate(*operands)
            end = schedule.end(name)
            produced[name] = result
            available_at[name] = end if timing.chaining else end + 1
            events.append(
                StepEvent(
                    step=step,
                    op=name,
                    kind=node.kind,
                    instance=datapath.binding[name],
                    operands=operands,
                    result=result,
                )
            )
            signal = f"op:{name}"
            life = datapath.lifetimes.get(signal)
            if life is not None and life.needs_register:
                register = datapath.registers.assignment[signal]
                pending_writes.setdefault(end, []).append(
                    (register, signal, result)
                )

    apply_writes_before(schedule.cs + 2)
    outputs: Dict[str, int] = {}
    for out_name, port in dfg.outputs.items():
        if port.is_const:
            outputs[out_name] = port.value
        elif port.is_input:
            outputs[out_name] = inputs[port.name]
        else:
            outputs[out_name] = read_value(port, f"output:{out_name}", schedule.cs + 1)
    return ExecutionTrace(
        outputs=outputs, events=events, register_writes=register_writes
    )


def verify_equivalence(
    datapath: Datapath, inputs: Mapping[str, int]
) -> ExecutionTrace:
    """Run the datapath and assert its outputs match the reference
    evaluator; returns the trace on success."""
    trace = execute_datapath(datapath, inputs)
    reference = evaluate_dfg(
        datapath.schedule.dfg, datapath.schedule.timing.ops, inputs
    )
    for out_name in datapath.schedule.dfg.outputs:
        if trace.outputs[out_name] != reference[out_name]:
            raise SimulationError(
                f"output {out_name!r}: datapath produced "
                f"{trace.outputs[out_name]}, reference says {reference[out_name]}"
            )
    return trace
