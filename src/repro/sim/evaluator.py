"""Reference (untimed) DFG evaluation.

Evaluates every node in topological order with the pure-Python evaluators
registered in the operation set.  Branch-tagged nodes (§5.1) are still
evaluated — mutual exclusion is a *resource* property; data-flow semantics
of the merged conditional graph follow the selected arm only through the
values the user wires (this matches how 1990s HLS treated speculated
conditional bodies).
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.errors import SimulationError
from repro.dfg.graph import DFG, Port
from repro.dfg.ops import OperationSet


def evaluate_dfg(
    dfg: DFG,
    ops: OperationSet,
    inputs: Mapping[str, int],
) -> Dict[str, int]:
    """Evaluate ``dfg`` on concrete integer ``inputs``.

    Returns a dict with one entry per primary output plus one per node
    (keyed ``op:<name>`` for nodes, plain output names for outputs).
    Raises :class:`SimulationError` for missing inputs.
    """
    for name in dfg.inputs:
        if name not in inputs:
            raise SimulationError(f"missing value for primary input {name!r}")

    values: Dict[str, int] = {}

    def read(port: Port) -> int:
        if port.is_const:
            return port.value
        if port.is_input:
            return inputs[port.name]
        return values[f"op:{port.name}"]

    for name in dfg.topological_order():
        node = dfg.node(name)
        spec = ops.spec(node.kind)
        operands = [read(port) for port in node.operands]
        values[f"op:{name}"] = spec.evaluate(*operands)

    results = dict(values)
    for out_name, port in dfg.outputs.items():
        results[out_name] = read(port)
    return results
