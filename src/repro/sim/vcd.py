"""VCD (Value Change Dump) export of datapath simulations.

Turns an :class:`~repro.sim.executor.ExecutionTrace` into an IEEE-1364
VCD waveform readable by GTKWave & friends: one signal per register, per
operation result and per primary output, sampled at control-step
granularity (one timestep per control step).
"""

from __future__ import annotations

from typing import Dict, List

from repro.allocation.datapath import Datapath
from repro.sim.executor import ExecutionTrace


def _identifier_codes(names: List[str]) -> Dict[str, str]:
    """Compact VCD identifier codes (printable ASCII 33..126)."""
    codes: Dict[str, str] = {}
    for index, name in enumerate(names):
        code = ""
        value = index
        while True:
            code += chr(33 + value % 94)
            value //= 94
            if value == 0:
                break
        codes[name] = code
    return codes


def _binary(value: int, width: int) -> str:
    mask = (1 << width) - 1
    return format(value & mask, f"0{width}b")


def trace_to_vcd(
    datapath: Datapath,
    trace: ExecutionTrace,
    width: int = 16,
    timescale: str = "1 ns",
    module: str = "datapath",
) -> str:
    """Render one simulation run as VCD text."""
    schedule = datapath.schedule
    registers = [f"r{i}" for i in range(datapath.registers.count)]
    wires = [f"w_{event.op}" for event in trace.events]
    outputs = [f"out_{name}" for name in schedule.dfg.outputs]
    state = ["state"]
    names = state + registers + sorted(set(wires)) + outputs
    codes = _identifier_codes(names)

    lines = [
        "$date reproduced-run $end",
        "$version repro MFSA datapath simulator $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for name in names:
        signal_width = width if name != "state" else 8
        lines.append(f"$var wire {signal_width} {codes[name]} {name} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # Events by step: operation results at their start step, register
    # values visible from the step after their write.
    results_by_step: Dict[int, List] = {}
    for event in trace.events:
        results_by_step.setdefault(event.step, []).append(event)
    writes_by_visible_step: Dict[int, List] = {}
    for end, register, _signal, value in trace.register_writes:
        writes_by_visible_step.setdefault(end + 1, []).append((register, value))

    lines.append("#0")
    lines.append(f"b{_binary(0, 8)} {codes['state']}")
    for step in range(1, schedule.cs + 2):
        lines.append(f"#{step}")
        lines.append(f"b{_binary(step, 8)} {codes['state']}")
        for register, value in writes_by_visible_step.get(step, []):
            lines.append(f"b{_binary(value, width)} {codes[f'r{register}']}")
        for event in results_by_step.get(step, []):
            lines.append(
                f"b{_binary(event.result, width)} {codes[f'w_{event.op}']}"
            )
        if step == schedule.cs + 1:
            for out_name, value in trace.outputs.items():
                lines.append(
                    f"b{_binary(value, width)} {codes[f'out_{out_name}']}"
                )
    return "\n".join(lines) + "\n"


def write_vcd(
    path: str,
    datapath: Datapath,
    trace: ExecutionTrace,
    **kwargs,
) -> None:
    """Write :func:`trace_to_vcd` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(trace_to_vcd(datapath, trace, **kwargs))
