"""Quality comparison harness: MFS vs the baseline schedulers (§6).

The paper compares its costs against force-directed scheduling (HAL),
MAHA and an ILP formulation, reporting −4 % … +5 % differences.  Those
tools are not available, so the shape we reproduce is: on the same
examples, MFS's FU demand is within one unit (and its weighted FU area
within a few percent) of our own force-directed, list and exact
(branch-and-bound) schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.ops import standard_operation_set
from repro.library.ncr import BASE_AREAS
from repro.schedule.force_directed import force_directed_schedule
from repro.schedule.list_scheduler import list_schedule_time_constrained
from repro.schedule.exact import exact_schedule
from repro.core.mfs import MFSScheduler
from repro.bench.suites import EXAMPLES, Table1Case


@dataclass
class BaselineRow:
    """FU demand of one (example, T, method) combination."""

    example: str
    cs: int
    method: str
    fu_counts: Dict[str, int]

    @property
    def total_units(self) -> int:
        return sum(self.fu_counts.values())

    @property
    def weighted_area(self) -> float:
        """FU counts weighted by single-function cell area."""
        return sum(
            count * BASE_AREAS[kind] for kind, count in self.fu_counts.items()
        )


#: Examples small enough for the exact scheduler to finish quickly.
EXACT_FRIENDLY = ("ex1", "ex2", "ex3")


def compare_methods(
    keys: Optional[Iterable[str]] = None,
    include_exact: bool = True,
    exact_node_limit: int = 500_000,
) -> List[BaselineRow]:
    """Run MFS + baselines on the Table-1 base case of each example."""
    rows: List[BaselineRow] = []
    for key, spec in EXAMPLES.items():
        if keys is not None and key not in set(keys):
            continue
        case = spec.table1_cases[0]
        dfg = spec.build()
        ops = standard_operation_set(mul_latency=case.mul_latency)
        # Pipelining and chaining are MFS features the baselines lack, so
        # the comparison uses the plain (unchained, unpipelined) setting;
        # chained examples get their unchained critical path as budget.
        timing = TimingModel(ops=ops, clock_period_ns=None)
        cs = case.cs
        if case.clock_ns is not None:
            cs = max(cs, critical_path_length(dfg, timing))
        case = Table1Case(cs=cs, mul_latency=case.mul_latency)

        mfs = MFSScheduler(dfg, timing, cs=case.cs, mode="time").run()
        rows.append(
            BaselineRow(
                example=key, cs=case.cs, method="mfs", fu_counts=mfs.fu_counts
            )
        )
        fds = force_directed_schedule(dfg, timing, case.cs)
        rows.append(
            BaselineRow(
                example=key, cs=case.cs, method="fds", fu_counts=fds.fu_usage()
            )
        )
        lst = list_schedule_time_constrained(dfg, timing, case.cs)
        rows.append(
            BaselineRow(
                example=key, cs=case.cs, method="list", fu_counts=lst.fu_usage()
            )
        )
        if include_exact and key in EXACT_FRIENDLY:
            optimal = exact_schedule(
                dfg, timing, case.cs, node_limit=exact_node_limit
            )
            rows.append(
                BaselineRow(
                    example=key,
                    cs=case.cs,
                    method="exact",
                    fu_counts=optimal.fu_usage(),
                )
            )
    return rows


def render_baselines(rows: List[BaselineRow]) -> str:
    """Text table of the method comparison."""
    lines = [
        "Scheduler quality comparison (FU demand at the tightest T)",
        f"{'example':<10}{'T':>4} {'method':<8}{'units':>6}"
        f"{'weighted area':>15}  mix",
        "-" * 70,
    ]
    for row in rows:
        lines.append(
            f"{row.example:<10}{row.cs:>4} {row.method:<8}{row.total_units:>6}"
            f"{row.weighted_area:>15.0f}  {row.fu_counts}"
        )
    return "\n".join(lines)
