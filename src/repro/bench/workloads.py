"""Extra DSP workloads beyond the paper's six examples.

Used by the scalability benchmarks, the examples and the wider test
coverage; each is a standard kernel a 1992 HLS tool would be pointed at.
"""

from __future__ import annotations

from typing import List

from repro.dfg.builder import DFGBuilder
from repro.dfg.graph import DFG
from repro.dfg.ops import OpKind


def dct8() -> DFG:
    """8-point DCT-II butterfly network (Loeffler-style structure).

    Stage 1: 4 add/4 sub butterflies; stage 2: butterflies on the even
    half and coefficient rotations on the odd half; stage 3: output
    combinations.  26 adds/subs and 10 multiplies.
    """
    b = DFGBuilder("dct8")
    x = list(b.inputs(*(f"x{k}" for k in range(8))))
    c = list(b.inputs(*(f"c{k}" for k in range(10))))

    # stage 1 butterflies
    s = [b.op(OpKind.ADD, x[k], x[7 - k], name=f"s1a{k}") for k in range(4)]
    d = [b.op(OpKind.SUB, x[k], x[7 - k], name=f"s1s{k}") for k in range(4)]

    # stage 2: even half
    e0 = b.op(OpKind.ADD, s[0], s[3], name="e0")
    e1 = b.op(OpKind.ADD, s[1], s[2], name="e1")
    e2 = b.op(OpKind.SUB, s[0], s[3], name="e2")
    e3 = b.op(OpKind.SUB, s[1], s[2], name="e3")
    # stage 2: odd half rotations
    r = []
    for k in range(4):
        m = b.op(OpKind.MUL, d[k], c[k], name=f"rot{k}")
        r.append(m)
    t0 = b.op(OpKind.ADD, r[0], r[1], name="t0")
    t1 = b.op(OpKind.SUB, r[2], r[3], name="t1")
    t2 = b.op(OpKind.ADD, r[1], r[2], name="t2")
    t3 = b.op(OpKind.SUB, r[0], r[3], name="t3")

    # stage 3: outputs
    y0 = b.op(OpKind.ADD, e0, e1, name="y0")
    y4 = b.op(OpKind.SUB, e0, e1, name="y4")
    m2 = b.op(OpKind.MUL, e2, c[4], name="m2")
    m3 = b.op(OpKind.MUL, e3, c[5], name="m3")
    y2 = b.op(OpKind.ADD, m2, m3, name="y2")
    y6 = b.op(OpKind.SUB, m2, m3, name="y6")
    m4 = b.op(OpKind.MUL, t0, c[6], name="m4")
    m5 = b.op(OpKind.MUL, t1, c[7], name="m5")
    m6 = b.op(OpKind.MUL, t2, c[8], name="m6")
    m7 = b.op(OpKind.MUL, t3, c[9], name="m7")
    y1 = b.op(OpKind.ADD, m4, m5, name="y1")
    y3 = b.op(OpKind.SUB, m6, m7, name="y3")
    y5 = b.op(OpKind.ADD, m6, m7, name="y5")
    y7 = b.op(OpKind.SUB, m4, m5, name="y7")

    b.outputs(
        y0=y0, y1=y1, y2=y2, y3=y3, y4=y4, y5=y5, y6=y6, y7=y7
    )
    return b.build()


def fft8() -> DFG:
    """8-point radix-2 FFT dataflow (real/imag interleaved, 3 stages).

    Twiddle multiplications are modelled as two multiplies + add/sub per
    complex product (real arithmetic only, like every 1992 HLS paper).
    """
    b = DFGBuilder("fft8")
    re = list(b.inputs(*(f"re{k}" for k in range(8))))
    im = list(b.inputs(*(f"im{k}" for k in range(8))))
    wr = list(b.inputs(*(f"wr{k}" for k in range(3))))
    wi = list(b.inputs(*(f"wi{k}" for k in range(3))))

    def butterfly(ar, ai, br, bi, stage, index, twiddle):
        prefix = f"s{stage}b{index}"
        if twiddle is None:
            tr, ti = br, bi
        else:
            twr, twi = twiddle
            m1 = b.op(OpKind.MUL, br, twr, name=f"{prefix}_m1")
            m2 = b.op(OpKind.MUL, bi, twi, name=f"{prefix}_m2")
            m3 = b.op(OpKind.MUL, br, twi, name=f"{prefix}_m3")
            m4 = b.op(OpKind.MUL, bi, twr, name=f"{prefix}_m4")
            tr = b.op(OpKind.SUB, m1, m2, name=f"{prefix}_tr")
            ti = b.op(OpKind.ADD, m3, m4, name=f"{prefix}_ti")
        or1 = b.op(OpKind.ADD, ar, tr, name=f"{prefix}_or0")
        oi1 = b.op(OpKind.ADD, ai, ti, name=f"{prefix}_oi0")
        or2 = b.op(OpKind.SUB, ar, tr, name=f"{prefix}_or1")
        oi2 = b.op(OpKind.SUB, ai, ti, name=f"{prefix}_oi1")
        return (or1, oi1), (or2, oi2)

    # stage 1: stride-4 butterflies, no twiddles
    pairs = []
    for k in range(4):
        top, bottom = butterfly(
            re[k], im[k], re[k + 4], im[k + 4], 1, k, None
        )
        pairs.append((top, bottom))
    level1 = [p[0] for p in pairs] + [p[1] for p in pairs]

    # stage 2: stride-2, twiddle on the second half
    level2: List = [None] * 8
    for half in range(2):
        base = half * 4
        for k in range(2):
            twiddle = None if k == 0 else (wr[0], wi[0])
            a = level1[base + k]
            c = level1[base + k + 2]
            top, bottom = butterfly(
                a[0], a[1], c[0], c[1], 2, base + k, twiddle
            )
            level2[base + k] = top
            level2[base + k + 2] = bottom

    # stage 3: stride-1, distinct twiddles
    level3: List = [None] * 8
    for quarter in range(4):
        base = quarter * 2
        twiddle = None if quarter % 2 == 0 else (wr[1 + quarter // 2], wi[1 + quarter // 2])
        a = level2[base]
        c = level2[base + 1]
        top, bottom = butterfly(a[0], a[1], c[0], c[1], 3, base, twiddle)
        level3[base] = top
        level3[base + 1] = bottom

    for k, (out_re, out_im) in enumerate(level3):
        b.output(f"Xre{k}", out_re)
        b.output(f"Xim{k}", out_im)
    return b.build()


def biquad() -> DFG:
    """Direct-form-II biquad section: 4 multiplies, 4 adds/subs."""
    b = DFGBuilder("biquad")
    xin, w1, w2 = b.inputs("x", "w1", "w2")
    a1c, a2c, b1c, b2c = b.inputs("a1", "a2", "b1", "b2")
    m1 = b.op(OpKind.MUL, w1, a1c, name="m1")
    m2 = b.op(OpKind.MUL, w2, a2c, name="m2")
    w0 = b.op(OpKind.SUB, b.op(OpKind.SUB, xin, m1, name="d1"), m2, name="w0")
    m3 = b.op(OpKind.MUL, w1, b1c, name="m3")
    m4 = b.op(OpKind.MUL, w2, b2c, name="m4")
    y = b.op(OpKind.ADD, b.op(OpKind.ADD, w0, m3, name="s1"), m4, name="y")
    b.outputs(y=y, w0=w0)
    return b.build()
