"""The paper's six design examples (§6) plus auxiliary workloads.

The paper only says "six design examples from the literature"; DESIGN.md
documents how each was identified or, where identification is impossible,
crafted as a *surrogate* with the operation-type signature Table 1 reveals
(kinds, critical path, special features).  Confidence levels:

========  =====================================  ==========
Example   Function                               Confidence
========  =====================================  ==========
#1        :func:`facet_like`                     medium
#2        :func:`chained_addsub`                 low (crafted)
#3        :func:`hal_diffeq` (canonical HAL)     high
#4        :func:`iir_bandpass`                   low (crafted)
#5        :func:`ar_lattice`                     medium
#6        :func:`ewf` (EWF-shaped surrogate)     high (op mix exact)
========  =====================================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.dfg.builder import DFGBuilder
from repro.dfg.graph import DFG
from repro.dfg.ops import OpKind


# ----------------------------------------------------------------------
# Example #1 — FACET-era logic/arithmetic example
# ----------------------------------------------------------------------
def facet_like() -> DFG:
    """Surrogate for example #1: kinds {*, +, −, =, &, |}.

    Reproduces the Table-1 row exactly: at T=4 both additions collide
    (2 adders); at T=5 one slips a step (1 adder); every other kind needs
    one unit at either T.
    """
    b = DFGBuilder("facet_like")
    a, bb, c, d, e, f, g, h = b.inputs("a", "b", "c", "d", "e", "f", "g", "h")
    m1 = b.op(OpKind.MUL, a, bb, name="m1")
    s1 = b.op(OpKind.SUB, c, d, name="s1")
    a1 = b.op(OpKind.ADD, m1, e, name="a1")
    a2 = b.op(OpKind.ADD, s1, f, name="a2")
    cmp = b.op(OpKind.EQ, a1, g, name="cmp")
    an = b.op(OpKind.AND, a2, h, name="an")
    orr = b.op(OpKind.OR, cmp, an, name="orr")
    b.output("result", orr)
    return b.build()


# ----------------------------------------------------------------------
# Example #2 — chained add/sub string
# ----------------------------------------------------------------------
def chained_addsub() -> DFG:
    """Surrogate for example #2 (chaining, kinds {+, −}).

    An eight-operation alternating add/sub chain: with a 20 ns clock and
    10 ns adders two dependent operations chain per step, so the whole
    string fits T=4 with one adder and one subtractor — the Table-1 row.
    """
    b = DFGBuilder("chained_addsub")
    values = b.inputs(*(f"i{k}" for k in range(1, 10)))
    acc = b.op(OpKind.ADD, values[0], values[1], name="a1")
    names = ["s1", "a2", "s2", "a3", "s3", "a4", "s4"]
    kinds = [
        OpKind.SUB,
        OpKind.ADD,
        OpKind.SUB,
        OpKind.ADD,
        OpKind.SUB,
        OpKind.ADD,
        OpKind.SUB,
    ]
    for index, (kind, name) in enumerate(zip(kinds, names)):
        acc = b.op(kind, acc, values[index + 2], name=name)
    b.output("result", acc)
    return b.build()


# ----------------------------------------------------------------------
# Example #3 — the HAL differential-equation benchmark (canonical)
# ----------------------------------------------------------------------
def hal_diffeq() -> DFG:
    """The HAL benchmark (Paulin & Knight): 6 *, 2 −, 2 +, 1 <.

    Solves ``y'' + 3xy' + 3y = 0`` by one Euler step; the canonical DFG
    keeps both ``u·dx`` products separate (no common-subexpression
    elimination), matching the figure used throughout the 1990s HLS
    literature.
    """
    b = DFGBuilder("hal_diffeq")
    x, dx, u, y, a = b.inputs("x", "dx", "u", "y", "a")
    three = b.const(3)
    m1 = b.op(OpKind.MUL, three, x, name="m1")
    m2 = b.op(OpKind.MUL, u, dx, name="m2")
    m3 = b.op(OpKind.MUL, three, y, name="m3")
    m4 = b.op(OpKind.MUL, m1, m2, name="m4")
    m5 = b.op(OpKind.MUL, m3, dx, name="m5")
    m6 = b.op(OpKind.MUL, u, dx, name="m6")
    s1 = b.op(OpKind.SUB, u, m4, name="s1")
    s2 = b.op(OpKind.SUB, s1, m5, name="s2")
    a1 = b.op(OpKind.ADD, y, m6, name="a1")
    a2 = b.op(OpKind.ADD, x, dx, name="a2")
    c1 = b.op(OpKind.LT, a2, a, name="c1")
    b.outputs(u1=s2, y1=a1, x1=a2, again=c1)
    return b.build()


# ----------------------------------------------------------------------
# Example #4 — IIR bandpass biquad cascade (crafted)
# ----------------------------------------------------------------------
def iir_bandpass() -> DFG:
    """Surrogate for example #4: kinds {*, +, −}, critical path 8.

    Two cascaded biquad sections with feed-forward taps: 23 operations
    (8 *, 9 +, 6 −); the spine M-A-M-A-S-A-S-A gives the 8-step critical
    path (1-cycle units) that admits the paper's T ∈ {8, 9, 13} sweep.
    """
    b = DFGBuilder("iir_bandpass")
    xin, w1, w2, w3, w4 = b.inputs("x", "w1", "w2", "w3", "w4")
    b0, b1c, a1c, a2c = b.inputs("b0", "b1", "a1", "a2")
    # --- section 1 spine (depths annotated for 1-cycle units) -------------
    m1 = b.op(OpKind.MUL, xin, b0, name="m1")           # depth 1
    t1 = b.op(OpKind.ADD, m1, w1, name="t1")            # depth 2
    m2 = b.op(OpKind.MUL, t1, a1c, name="m2")           # depth 3
    t2 = b.op(OpKind.ADD, m2, w2, name="t2")            # depth 4
    d1 = b.op(OpKind.SUB, t2, w1, name="d1")            # depth 5
    t3 = b.op(OpKind.ADD, d1, xin, name="t3")           # depth 6
    d2 = b.op(OpKind.SUB, t3, w2, name="d2")            # depth 7
    y1 = b.op(OpKind.ADD, d2, w3, name="y1")            # depth 8
    # --- section-1 side taps ----------------------------------------------
    m3 = b.op(OpKind.MUL, w1, b1c, name="m3")           # depth 1
    m4 = b.op(OpKind.MUL, w2, a2c, name="m4")           # depth 1
    f1 = b.op(OpKind.ADD, m3, m4, name="f1")            # depth 2
    g1 = b.op(OpKind.SUB, f1, w3, name="g1")            # depth 3
    # --- section 2 (parallel, shallower) ------------------------------------
    m5 = b.op(OpKind.MUL, w3, b0, name="m5")            # depth 1
    m6 = b.op(OpKind.MUL, w4, b1c, name="m6")           # depth 1
    t4 = b.op(OpKind.ADD, m5, m6, name="t4")            # depth 2
    m7 = b.op(OpKind.MUL, t4, a1c, name="m7")           # depth 3
    t5 = b.op(OpKind.ADD, m7, w4, name="t5")            # depth 4
    d3 = b.op(OpKind.SUB, t5, w3, name="d3")            # depth 5
    # --- merge / state updates ----------------------------------------------
    m8 = b.op(OpKind.MUL, g1, a2c, name="m8")           # depth 4
    t6 = b.op(OpKind.ADD, m8, d3, name="t6")            # depth 6
    d4 = b.op(OpKind.SUB, t6, w4, name="d4")            # depth 7
    t7 = b.op(OpKind.ADD, d4, t4, name="t7")            # depth 8
    d5 = b.op(OpKind.SUB, t4, g1, name="d5")            # depth 4
    b.outputs(y=y1, w1_next=t3, w2_next=d2, acc=t7, err=d5)
    return b.build()


# ----------------------------------------------------------------------
# Example #5 — AR lattice filter
# ----------------------------------------------------------------------
def ar_lattice() -> DFG:
    """AR-lattice-shaped workload: 16 *, 12 + (the classic 28-op mix).

    Four lattice sections of 4 multiplications + 2 recombination
    additions.  Sections 1→2→3 are serial; section 4 hangs off section 2
    in parallel with section 3, so the 2-cycle-multiplier critical path is
    3 · (2 + 1) = 9 steps — admitting the paper's T ∈ {9, 10, 13} sweep.
    Four shallow tap additions complete the 12-addition mix.
    """
    b = DFGBuilder("ar_lattice")
    a0, b0 = b.inputs("a0", "b0")
    coefficients = b.inputs(*(f"k{k}" for k in range(1, 17)))
    taps = b.inputs("c1", "c2", "c3", "c4")

    def section(index: int, a_in, b_in):
        base = 4 * (index - 1)
        m1 = b.op(OpKind.MUL, a_in, coefficients[base], name=f"s{index}_m1")
        m2 = b.op(OpKind.MUL, b_in, coefficients[base + 1], name=f"s{index}_m2")
        m3 = b.op(OpKind.MUL, a_in, coefficients[base + 2], name=f"s{index}_m3")
        m4 = b.op(OpKind.MUL, b_in, coefficients[base + 3], name=f"s{index}_m4")
        a_out = b.op(OpKind.ADD, m1, m2, name=f"s{index}_a1")
        b_out = b.op(OpKind.ADD, m3, m4, name=f"s{index}_a2")
        return a_out, b_out

    a1_, b1_ = section(1, a0, b0)        # outputs at depth 3 (2-cycle mult)
    a2_, b2_ = section(2, a1_, b1_)      # depth 6
    a3_, b3_ = section(3, a2_, b2_)      # depth 9
    a4_, b4_ = section(4, a1_, b1_)      # depth 6; slack 3 at T=9

    t1 = b.op(OpKind.ADD, a1_, taps[0], name="tap1")   # depth 4
    t2 = b.op(OpKind.ADD, a2_, taps[1], name="tap2")   # depth 7
    t3 = b.op(OpKind.ADD, b2_, taps[2], name="tap3")   # depth 7
    t4 = b.op(OpKind.ADD, t1, taps[3], name="tap4")    # depth 5
    b.outputs(y1=a3_, y2=b3_, y3=a4_, y4=b4_, e1=t2, e2=t3, e3=t4)
    return b.build()


# ----------------------------------------------------------------------
# Example #6 — fifth-order elliptic wave filter (EWF-shaped)
# ----------------------------------------------------------------------
def ewf() -> DFG:
    """EWF-shaped workload: 34 operations (26 +, 8 *), critical path 14
    with 1-cycle and 17 with 2-cycle multipliers — the canonical EWF
    numbers (the published edge list is reconstructed structurally; see
    DESIGN.md substitutions).

    The graph is a cross-coupled adaptor cascade: an 11-addition /
    3-multiplication spine plus five coefficient cross-products whose
    windows pin them against the spine multipliers, forcing the canonical
    3-multiplier / 3-adder demand at T=17 (2-cycle multipliers) that
    relaxes to 2/2 at T=19 and 1/2 at T=21.
    """
    b = DFGBuilder("ewf")
    xin = b.input("x")
    sv = dict(enumerate(b.inputs(*(f"sv{k}" for k in range(1, 8))), start=1))
    g = dict(enumerate(b.inputs(*(f"g{k}" for k in range(1, 9))), start=1))

    p1 = b.op(OpKind.ADD, xin, sv[1], name="p1")
    p2 = b.op(OpKind.ADD, p1, sv[2], name="p2")
    p3 = b.op(OpKind.MUL, p2, g[1], name="p3")
    q1 = b.op(OpKind.MUL, p1, g[4], name="q1")
    x1 = b.op(OpKind.ADD, q1, sv[3], name="x1")
    p4 = b.op(OpKind.ADD, p3, x1, name="p4")
    q2 = b.op(OpKind.MUL, p2, g[5], name="q2")
    x2 = b.op(OpKind.ADD, q2, sv[4], name="x2")
    p5 = b.op(OpKind.ADD, p4, x2, name="p5")
    w1 = b.op(OpKind.ADD, x1, sv[5], name="w1")
    q3 = b.op(OpKind.MUL, w1, g[6], name="q3")
    x3 = b.op(OpKind.ADD, q3, sv[6], name="x3")
    p6 = b.op(OpKind.MUL, p5, g[2], name="p6")
    p7 = b.op(OpKind.ADD, p6, x3, name="p7")
    w2 = b.op(OpKind.ADD, x2, sv[7], name="w2")
    q4 = b.op(OpKind.MUL, x3, g[7], name="q4")
    x4 = b.op(OpKind.ADD, q4, sv[1], name="x4")
    p8 = b.op(OpKind.ADD, p7, w2, name="p8")
    p9 = b.op(OpKind.MUL, p8, g[3], name="p9")
    q5 = b.op(OpKind.MUL, p8, g[8], name="q5")
    x5 = b.op(OpKind.ADD, q5, sv[2], name="x5")
    p10 = b.op(OpKind.ADD, p9, sv[3], name="p10")
    p11 = b.op(OpKind.ADD, p10, sv[4], name="p11")
    p12 = b.op(OpKind.ADD, p11, x4, name="p12")
    p13 = b.op(OpKind.ADD, p12, x5, name="p13")
    p14 = b.op(OpKind.ADD, p13, sv[6], name="p14")

    # Loose state-update adder chains (complete the 26-addition mix).
    r1 = b.op(OpKind.ADD, xin, sv[7], name="r1")
    r2 = b.op(OpKind.ADD, r1, sv[1], name="r2")
    r3 = b.op(OpKind.ADD, r2, q1, name="r3")
    r4 = b.op(OpKind.ADD, r3, sv[2], name="r4")
    r5 = b.op(OpKind.ADD, q2, sv[5], name="r5")
    r6 = b.op(OpKind.ADD, r5, x1, name="r6")
    r7 = b.op(OpKind.ADD, x3, sv[6], name="r7")
    r8 = b.op(OpKind.ADD, r7, x5, name="r8")

    b.outputs(
        y=p14,
        sv1_next=p11,
        sv2_next=r4,
        sv3_next=r6,
        sv4_next=r8,
        sv5_next=x4,
        sv6_next=w2,
        sv7_next=p13,
    )
    return b.build()


# ----------------------------------------------------------------------
# Auxiliary workloads (not part of the paper's six)
# ----------------------------------------------------------------------
def fir16() -> DFG:
    """16-tap FIR filter: 16 multiplications + 15-addition tree."""
    b = DFGBuilder("fir16")
    samples = b.inputs(*(f"x{k}" for k in range(16)))
    coefficients = b.inputs(*(f"h{k}" for k in range(16)))
    products = [
        b.op(OpKind.MUL, samples[k], coefficients[k], name=f"p{k}")
        for k in range(16)
    ]
    level = products
    depth = 0
    while len(level) > 1:
        depth += 1
        next_level = []
        for index in range(0, len(level) - 1, 2):
            next_level.append(
                b.op(
                    OpKind.ADD,
                    level[index],
                    level[index + 1],
                    name=f"t{depth}_{index // 2}",
                )
            )
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    b.output("y", level[0])
    return b.build()


def conditional_example() -> DFG:
    """If-then-else workload exercising mutual exclusion (§5.1).

    Both arms hold a multiplication and an addition; they are mutually
    exclusive, so MFS may pack them onto the same units in the same steps.
    """
    b = DFGBuilder("conditional")
    a, c, d, e, f = b.inputs("a", "c", "d", "e", "f")
    cond = b.op(OpKind.GT, a, c, name="cond")
    b.then_branch("c0")
    tm = b.op(OpKind.MUL, d, e, name="then_mul")
    ta = b.op(OpKind.ADD, tm, f, name="then_add")
    b.else_branch("c0")
    em = b.op(OpKind.MUL, d, f, name="else_mul")
    ea = b.op(OpKind.ADD, em, e, name="else_add")
    b.end_branch("c0")
    merged = b.op(OpKind.ADD, ta, ea, name="merge")
    b.outputs(sel=cond, out=merged)
    return b.build()


# ----------------------------------------------------------------------
# Registry of the paper's six examples with their Table-1 cases
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Case:
    """One (example, T) cell of Table 1.

    ``paper_fu`` is the FU mix the paper reports where the scanned text is
    parseable, else ``None``; keys are kind names, values unit counts.
    """

    cs: int
    mul_latency: int = 1
    clock_ns: Optional[float] = None
    latency_l: Optional[int] = None
    pipelined_kinds: Tuple[str, ...] = ()
    paper_fu: Optional[Mapping[str, int]] = None


@dataclass(frozen=True)
class ExampleSpec:
    """One of the paper's six examples with its experiment parameters."""

    key: str
    number: int
    factory: Callable[[], DFG]
    description: str
    confidence: str
    feature: str
    table1_cases: Tuple[Table1Case, ...]
    mfsa_cs: int
    mfsa_mul_latency: int = 1
    mfsa_clock_ns: Optional[float] = None

    def build(self) -> DFG:
        """Construct a fresh DFG instance."""
        return self.factory()


EXAMPLES: Dict[str, ExampleSpec] = {
    spec.key: spec
    for spec in (
        ExampleSpec(
            key="ex1",
            number=1,
            factory=facet_like,
            description="FACET-era logic/arith example {*,+,-,=,&,|}",
            confidence="medium",
            feature="",
            table1_cases=(
                Table1Case(
                    cs=4,
                    paper_fu={
                        "mul": 1, "add": 2, "sub": 1, "eq": 1, "and": 1, "or": 1
                    },
                ),
                Table1Case(
                    cs=5,
                    paper_fu={
                        "mul": 1, "add": 1, "sub": 1, "eq": 1, "and": 1, "or": 1
                    },
                ),
            ),
            mfsa_cs=4,
        ),
        ExampleSpec(
            key="ex2",
            number=2,
            factory=chained_addsub,
            description="chained add/sub string (crafted surrogate)",
            confidence="low",
            feature="C",
            table1_cases=(
                Table1Case(
                    cs=4, clock_ns=20.0, paper_fu={"add": 1, "sub": 1}
                ),
            ),
            mfsa_cs=4,
            mfsa_clock_ns=20.0,
        ),
        ExampleSpec(
            key="ex3",
            number=3,
            factory=hal_diffeq,
            description="HAL differential equation (canonical)",
            confidence="high",
            feature="F/S",
            table1_cases=(
                Table1Case(cs=4, paper_fu=None),
                Table1Case(cs=6, paper_fu=None),
                Table1Case(cs=8, paper_fu=None),
                # Functional pipelining with latency 3 at T=6.
                Table1Case(cs=6, latency_l=3, paper_fu=None),
                # Structural pipelining: 2-cycle pipelined multiplier.
                Table1Case(
                    cs=6, mul_latency=2, pipelined_kinds=("mul",), paper_fu=None
                ),
            ),
            mfsa_cs=6,
        ),
        ExampleSpec(
            key="ex4",
            number=4,
            factory=iir_bandpass,
            description="IIR bandpass biquad cascade (crafted surrogate)",
            confidence="low",
            feature="",
            table1_cases=(
                Table1Case(cs=8, paper_fu=None),
                Table1Case(cs=9, paper_fu=None),
                Table1Case(cs=13, paper_fu={"mul": 1, "add": 1, "sub": 1}),
            ),
            mfsa_cs=9,
        ),
        ExampleSpec(
            key="ex5",
            number=5,
            factory=ar_lattice,
            description="AR lattice filter (16*, 12+)",
            confidence="medium",
            feature="2-cycle mult",
            table1_cases=(
                Table1Case(cs=9, mul_latency=2, paper_fu=None),
                Table1Case(cs=10, mul_latency=2, paper_fu=None),
                Table1Case(cs=13, mul_latency=2, paper_fu=None),
            ),
            mfsa_cs=10,
            mfsa_mul_latency=2,
        ),
        ExampleSpec(
            key="ex6",
            number=6,
            factory=ewf,
            description="fifth-order elliptic wave filter (EWF-shaped)",
            confidence="high",
            feature="S, 2-cycle mult",
            table1_cases=(
                Table1Case(cs=17, mul_latency=2, paper_fu={"mul": 3, "add": 3}),
                Table1Case(cs=19, mul_latency=2, paper_fu={"mul": 2, "add": 2}),
                Table1Case(cs=21, mul_latency=2, paper_fu={"mul": 1, "add": 2}),
                # Structurally pipelined multiplier variant (feature "S"):
                # a pipelined unit accepts a new product every step, so the
                # multiplier count drops further.
                Table1Case(
                    cs=17, mul_latency=2, pipelined_kinds=("mul",), paper_fu=None
                ),
            ),
            mfsa_cs=17,
            mfsa_mul_latency=2,
        ),
    )
}
