"""Regeneration of the paper's Figures 1 and 2.

Both figures are conceptual diagrams; we regenerate them as deterministic
ASCII renderings driven by *real* algorithm state:

* Figure 1 (``figure1``): the placement table with an operation's
  highest-energy alternative ("present position") and the chosen
  minimum-energy position ("next position"), ΔX/ΔY/ΔV annotated;
* Figure 2 (``figure2``): the PF/RF/FF/MF frame map of an operation that
  — like the paper's operation ``r`` — has two already-placed
  predecessors at the moment it is scheduled.
"""

from __future__ import annotations

from typing import Optional

from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.core.mfs import MFSResult, MFSScheduler
from repro.io.frameviz import render_frames
from repro.io.gridviz import render_move
from repro.bench.suites import EXAMPLES


def _run(example: str, cs: Optional[int] = None) -> MFSResult:
    spec = EXAMPLES[example]
    case = spec.table1_cases[0]
    ops = standard_operation_set(mul_latency=case.mul_latency)
    timing = TimingModel(ops=ops, clock_period_ns=case.clock_ns)
    scheduler = MFSScheduler(
        spec.build(),
        timing,
        cs=cs or case.cs,
        mode="time",
        latency_l=case.latency_l,
        pipelined_kinds=case.pipelined_kinds,
        record_frames=True,
    )
    return scheduler.run()


def figure1(example: str = "ex3", cs: Optional[int] = None) -> str:
    """Regenerate Figure 1 from the richest move of an MFS run."""
    result = _run(example, cs)
    # The most interesting move: the one that weighed the most alternatives.
    event = max(result.trajectory.events, key=lambda e: len(e.alternatives))
    return render_move(event, result.grid)


def figure2(example: str = "ex3", cs: Optional[int] = None) -> str:
    """Regenerate Figure 2: frames of an operation with >= 2 placed
    predecessors (the paper's operation ``r`` with K1, K2)."""
    result = _run(example, cs)
    dfg = result.schedule.dfg
    target = None
    placed_order = [event.node for event in result.trajectory.events]
    for index, name in enumerate(placed_order):
        earlier = set(placed_order[:index])
        placed_preds = [p for p in dfg.predecessors(name) if p in earlier]
        if len(placed_preds) >= 2:
            target = name
            break
    if target is None:  # fall back to any op with placed predecessors
        for index, name in enumerate(placed_order):
            if set(dfg.predecessors(name)) & set(placed_order[:index]):
                target = name
                break
    if target is None:
        target = placed_order[-1]
    frame = result.frames_log[target]
    predecessors = {
        pred: result.placements[pred]
        for pred in dfg.predecessors(target)
        if pred in result.placements
    }
    return render_frames(
        frame,
        result.grid,
        chosen=result.placements[target],
        predecessors=predecessors,
    )


def figure2_svg(example: str = "ex3", cs: Optional[int] = None) -> str:
    """Figure 2 as an SVG vector image (same selection rule as figure2)."""
    from repro.io.svg import frames_to_svg

    result = _run(example, cs)
    dfg = result.schedule.dfg
    placed_order = [event.node for event in result.trajectory.events]
    target = placed_order[-1]
    for index, name in enumerate(placed_order):
        earlier = set(placed_order[:index])
        if len([p for p in dfg.predecessors(name) if p in earlier]) >= 2:
            target = name
            break
    predecessors = {
        pred: result.placements[pred]
        for pred in dfg.predecessors(target)
        if pred in result.placements
    }
    return frames_to_svg(
        result.frames_log[target],
        result.grid,
        chosen=result.placements[target],
        predecessors=predecessors,
    )


def figure_gantt_svg(example: str = "ex3", cs: Optional[int] = None) -> str:
    """Gantt-chart SVG of the example's MFS schedule (companion artifact)."""
    from repro.io.svg import schedule_to_svg

    result = _run(example, cs)
    binding = {
        name: (pos.table, pos.x) for name, pos in result.placements.items()
    }
    return schedule_to_svg(result.schedule, binding=binding)
