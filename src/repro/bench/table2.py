"""Regeneration harness for the paper's Table 2 (MFSA results).

For every example, run MFSA in both design styles against the synthetic
NCR-like library and report the Table-2 columns: ALU set, total cost
(µm²), register count, mux count and mux-input count.

The paper's headline observation — design style 2 (no self-loop around
ALUs) costs 2–11 % more than style 1 — is the shape the benchmark suite
checks.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable, List, Optional, Sequence

from repro.dfg.analysis import TimingModel
from repro.dfg.ops import standard_operation_set
from repro.library.cells import CellLibrary
from repro.library.ncr import datapath_library
from repro.core.mfsa import MFSAResult, MFSAScheduler
from repro.perf import PerfCounters
from repro.resilience.checkpoint import resume_map
from repro.sweep import SweepExecutor, worker_cached, worker_context
from repro.bench.suites import EXAMPLES, ExampleSpec


@dataclass
class Table2Row:
    """One (example, style) row of the regenerated Table 2."""

    example: str
    number: int
    cs: int
    style: int
    alu_labels: List[str]
    cost: float
    registers: int
    muxes: int
    mux_inputs: int

    def alu_notation(self) -> str:
        """Paper-style ALU column, e.g. ``2(+-); (&=)``."""
        counts = {}
        for label in self.alu_labels:
            counts[label] = counts.get(label, 0) + 1
        parts = []
        for label, count in sorted(counts.items()):
            parts.append(label if count == 1 else f"{count}{label}")
        return "; ".join(parts)


def run_example(
    spec: ExampleSpec,
    style: int,
    library: Optional[CellLibrary] = None,
    perf: Optional[PerfCounters] = None,
    no_cache: bool = False,
) -> MFSAResult:
    """Run MFSA for one Table-2 row."""
    dfg = spec.build()
    # Per-worker cached: a pool worker regenerating several rows with the
    # same (mul_latency, clock) builds the timing model once.
    timing = worker_cached(
        ("table2.timing", spec.mfsa_mul_latency, spec.mfsa_clock_ns),
        lambda: TimingModel(
            ops=standard_operation_set(mul_latency=spec.mfsa_mul_latency),
            clock_period_ns=spec.mfsa_clock_ns,
        ),
    )
    scheduler = MFSAScheduler(
        dfg,
        timing,
        library or datapath_library(),
        cs=spec.mfsa_cs,
        style=style,
        perf=perf,
        no_cache=no_cache,
    )
    return scheduler.run()


def _row_worker(payload) -> Table2Row:
    """One Table-2 row (module-level so process pools can pickle it).

    The cell library rides in the executor's shared worker context, so
    the per-row payload is just ``(example key, style)``.
    """
    key, style = payload
    spec = EXAMPLES[key]
    result = run_example(spec, style, worker_context())
    datapath = result.datapath
    return Table2Row(
        example=key,
        number=spec.number,
        cs=spec.mfsa_cs,
        style=style,
        alu_labels=result.alu_labels(),
        cost=result.cost.total,
        registers=datapath.register_count(),
        muxes=datapath.mux_count(),
        mux_inputs=datapath.mux_inputs(),
    )


def table2_rows(
    keys: Optional[Iterable[str]] = None,
    library: Optional[CellLibrary] = None,
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint: Optional[str] = None,
) -> List[Table2Row]:
    """Regenerate Table 2 (both styles for every example).

    ``backend``/``workers`` select the sweep executor; row order and
    values are identical on every backend.  ``checkpoint`` names a
    :class:`~repro.resilience.checkpoint.SweepCheckpoint` file so an
    interrupted regeneration resumes at row granularity; the library
    cost model is part of the checkpoint fingerprint.
    """
    library = library or datapath_library()
    wanted = set(keys) if keys is not None else None
    payloads = [
        (key, style)
        for key in EXAMPLES
        if wanted is None or key in wanted
        for style in (1, 2)
    ]
    ckpt = None
    if checkpoint is not None:
        from repro.dfg.fingerprint import library_fingerprint
        from repro.resilience.checkpoint import SweepCheckpoint

        ckpt = SweepCheckpoint(
            checkpoint,
            meta={"kind": "table2", "library": library_fingerprint(library)},
        )
    executor = SweepExecutor(
        backend=backend, workers=workers, context=library
    )
    try:
        return resume_map(
            executor,
            _row_worker,
            payloads,
            ckpt,
            key_fn=lambda payload: f"{payload[0]}:style{payload[1]}",
            encode=asdict,
            decode=lambda value: Table2Row(**value),
        )
    finally:
        if ckpt is not None:
            ckpt.close()


def style_overhead(rows: Sequence[Table2Row], number: int) -> float:
    """Style-2 cost overhead over style 1 for one example (fraction)."""
    style1 = next(r for r in rows if r.number == number and r.style == 1)
    style2 = next(r for r in rows if r.number == number and r.style == 2)
    return style2.cost / style1.cost - 1.0


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Text rendering in the shape of the paper's Table 2."""
    lines = [
        "Table 2 — MFSA results (synthetic NCR-like library)",
        f"{'Ex':<4}{'T':>3} {'Style':>6}  {'ALUs':<34}{'Cost':>9}"
        f"{'REG':>5}{'MUX':>5}{'MUXin':>7}",
        "-" * 80,
    ]
    for row in rows:
        lines.append(
            f"#{row.number:<3}{row.cs:>3} {row.style:>6}  "
            f"{row.alu_notation():<34}{row.cost:>9.0f}"
            f"{row.registers:>5}{row.muxes:>5}{row.mux_inputs:>7}"
        )
    by_example = sorted({row.number for row in rows})
    lines.append("-" * 80)
    for number in by_example:
        try:
            overhead = style_overhead(rows, number)
        except StopIteration:
            continue
        lines.append(f"#{number}: style-2 overhead over style-1 = {overhead:+.1%}")
    return "\n".join(lines)
