"""Regeneration harness for the paper's Table 1 (MFS results).

For every example and every time constraint ``T`` the paper swept, run MFS
and report the functional-unit mix in the paper's notation (``**,+,-`` =
two multipliers, one adder, one subtractor).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.dfg.analysis import TimingModel
from repro.dfg.ops import OP_SYMBOLS, standard_operation_set
from repro.core.mfs import MFSResult, MFSScheduler
from repro.perf import PerfCounters
from repro.resilience.checkpoint import resume_map
from repro.sweep import SweepExecutor, worker_cached
from repro.bench.suites import EXAMPLES, ExampleSpec, Table1Case


@dataclass
class Table1Row:
    """One (example, T) cell of the regenerated Table 1."""

    example: str
    number: int
    feature: str
    cs: int
    mul_latency: int
    fu_counts: Dict[str, int]
    makespan: int
    paper_fu: Optional[Mapping[str, int]]

    def fu_notation(self) -> str:
        """Paper-style FU mix, e.g. ``**,+,-``."""
        return format_fu_mix(self.fu_counts)

    def matches_paper(self) -> Optional[bool]:
        """Whether the measured mix equals the paper's (None if unknown)."""
        if self.paper_fu is None:
            return None
        return dict(self.paper_fu) == dict(self.fu_counts)


def format_fu_mix(fu_counts: Mapping[str, int]) -> str:
    """Render FU counts the way Table 1 prints them."""
    order = ["mul", "add", "sub", "div", "lt", "gt", "eq", "and", "or"]
    parts: List[str] = []
    for kind in order:
        count = fu_counts.get(kind, 0)
        if count:
            parts.append(OP_SYMBOLS.get(kind, kind) * count)
    for kind, count in fu_counts.items():
        if kind not in order and count:
            parts.append(OP_SYMBOLS.get(kind, kind) * count)
    return ",".join(parts)


def run_case(
    spec: ExampleSpec,
    case: Table1Case,
    perf: Optional[PerfCounters] = None,
) -> MFSResult:
    """Run MFS for one Table-1 cell."""
    dfg = spec.build()
    # Per-worker cached: a pool worker running several cells with the
    # same (mul_latency, clock) builds the timing model once.
    timing = worker_cached(
        ("table1.timing", case.mul_latency, case.clock_ns),
        lambda: TimingModel(
            ops=standard_operation_set(mul_latency=case.mul_latency),
            clock_period_ns=case.clock_ns,
        ),
    )
    scheduler = MFSScheduler(
        dfg,
        timing,
        cs=case.cs,
        mode="time",
        latency_l=case.latency_l,
        pipelined_kinds=case.pipelined_kinds,
        perf=perf,
    )
    return scheduler.run()


def _row_worker(payload) -> Table1Row:
    """One Table-1 cell (module-level so process pools can pickle it)."""
    key, case_index = payload
    spec = EXAMPLES[key]
    case = spec.table1_cases[case_index]
    result = run_case(spec, case)
    return Table1Row(
        example=key,
        number=spec.number,
        feature=spec.feature,
        cs=case.cs,
        mul_latency=case.mul_latency,
        fu_counts=result.fu_counts,
        makespan=result.schedule.makespan(),
        paper_fu=case.paper_fu,
    )


def table1_rows(
    keys: Optional[Iterable[str]] = None,
    backend: str = "serial",
    workers: Optional[int] = None,
    checkpoint: Optional[str] = None,
) -> List[Table1Row]:
    """Regenerate every Table-1 cell (optionally a subset of examples).

    ``backend``/``workers`` select the sweep executor; cell order and
    values are identical on every backend.  ``checkpoint`` names a
    :class:`~repro.resilience.checkpoint.SweepCheckpoint` file so an
    interrupted regeneration resumes at cell granularity.
    """
    wanted = set(keys) if keys is not None else None
    payloads = [
        (key, case_index)
        for key, spec in EXAMPLES.items()
        if wanted is None or key in wanted
        for case_index in range(len(spec.table1_cases))
    ]
    ckpt = None
    if checkpoint is not None:
        from repro.resilience.checkpoint import SweepCheckpoint

        ckpt = SweepCheckpoint(checkpoint, meta={"kind": "table1"})
    executor = SweepExecutor(backend=backend, workers=workers)
    try:
        return resume_map(
            executor,
            _row_worker,
            payloads,
            ckpt,
            key_fn=lambda payload: f"{payload[0]}:{payload[1]}",
            encode=asdict,
            decode=lambda value: Table1Row(**value),
        )
    finally:
        if ckpt is not None:
            ckpt.close()


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Text rendering in the shape of the paper's Table 1."""
    lines = [
        "Table 1 — MFS results (measured vs paper where parseable)",
        f"{'Ex':<4}{'feature':<14}{'T':>4}  {'FU mix (measured)':<28}"
        f"{'FU mix (paper)':<24}{'match':<6}",
        "-" * 80,
    ]
    for row in rows:
        paper = format_fu_mix(row.paper_fu) if row.paper_fu else "n/a"
        match = row.matches_paper()
        verdict = "-" if match is None else ("yes" if match else "NO")
        lines.append(
            f"#{row.number:<3}{row.feature:<14}{row.cs:>4}  "
            f"{row.fu_notation():<28}{paper:<24}{verdict:<6}"
        )
    return "\n".join(lines)
