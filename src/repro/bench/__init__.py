"""Benchmark workloads and the paper's table/figure regeneration harnesses.

* :mod:`repro.bench.suites` — the six design examples of §6 (or documented
  surrogates, see DESIGN.md) plus extra workloads;
* :mod:`repro.bench.table1` — regenerates Table 1 (MFS FU mixes per time
  constraint);
* :mod:`repro.bench.table2` — regenerates Table 2 (MFSA RTL structures,
  styles 1 and 2);
* :mod:`repro.bench.figures` — regenerates Figures 1 and 2 as ASCII
  renderings of real algorithm state;
* :mod:`repro.bench.baselines` — quality comparison harness against the
  list / force-directed / exact schedulers (§6's literature comparison).
"""

from repro.bench.suites import (
    EXAMPLES,
    ExampleSpec,
    Table1Case,
    ar_lattice,
    chained_addsub,
    conditional_example,
    ewf,
    facet_like,
    fir16,
    hal_diffeq,
    iir_bandpass,
)
from repro.bench.table1 import Table1Row, table1_rows, render_table1
from repro.bench.table2 import Table2Row, table2_rows, render_table2

__all__ = [
    "EXAMPLES",
    "ExampleSpec",
    "Table1Case",
    "facet_like",
    "chained_addsub",
    "hal_diffeq",
    "iir_bandpass",
    "ar_lattice",
    "ewf",
    "fir16",
    "conditional_example",
    "Table1Row",
    "table1_rows",
    "render_table1",
    "Table2Row",
    "table2_rows",
    "render_table2",
]
