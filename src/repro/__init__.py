"""repro — Move Frame Scheduling & Mixed Scheduling-Allocation.

A production-quality reproduction of

    M. Nourani and C. Papachristou, "Move Frame Scheduling and Mixed
    Scheduling-Allocation for the Automated Synthesis of Digital
    Systems", DAC 1992.

Public API highlights
---------------------
* :class:`~repro.dfg.builder.DFGBuilder` / :class:`~repro.dfg.graph.DFG` —
  build behavioral data-flow graphs (or parse them with
  :func:`~repro.dfg.parser.parse_behavior`);
* :func:`~repro.core.mfs.mfs_schedule` — Move Frame Scheduling under time
  or resource constraints, with chaining, multi-cycle operations, mutual
  exclusion, structural and functional pipelining;
* :func:`~repro.core.mfsa.mfsa_synthesize` — simultaneous scheduling and
  allocation of ALUs, registers and multiplexers against a cell library;
* :mod:`repro.schedule` — ASAP/ALAP, list, force-directed and exact
  baseline schedulers;
* :mod:`repro.allocation` — left-edge register allocation, mux input
  optimisation, datapath construction;
* :mod:`repro.rtl` — FSM controller and structural Verilog emission;
* :mod:`repro.sim` — reference evaluation and cycle-accurate datapath
  simulation (functional-equivalence oracle);
* :mod:`repro.bench` — the paper's six design examples and the Table-1 /
  Table-2 / Figure-1 / Figure-2 regeneration harnesses.
"""

from repro.errors import (
    AllocationError,
    DFGError,
    InfeasibleScheduleError,
    LibraryError,
    ReproError,
    ScheduleError,
    SimulationError,
    StabilityError,
)
from repro.dfg import (
    DFG,
    DFGBuilder,
    LoopFolder,
    OpKind,
    OperationSet,
    OpSpec,
    TimingModel,
    add_loop_control,
    balance_tree,
    common_subexpression_elimination,
    constant_fold,
    critical_path_length,
    eliminate_dead_code,
    merge_conditional_shared_ops,
    parse_behavior,
    standard_operation_set,
)
from repro.library import (
    ALUCell,
    CellLibrary,
    MuxCostTable,
    ncr_like_library,
    simple_fu_library,
)
from repro.schedule import (
    Schedule,
    annealing_schedule,
    exact_schedule,
    force_directed_schedule,
    list_schedule_resource_constrained,
    list_schedule_time_constrained,
    schedule_alap,
    schedule_asap,
)
from repro.core import (
    GridPosition,
    LiapunovWeights,
    MFSAResult,
    MFSAScheduler,
    MFSResult,
    MFSScheduler,
    PlacementGrid,
    ResourceConstrainedLiapunov,
    TimeConstrainedLiapunov,
    Trajectory,
    mfs_schedule,
    mfsa_synthesize,
)
from repro.allocation import (
    Datapath,
    bind_functional_units,
    compare_interconnect_styles,
    left_edge_allocate,
    value_lifetimes,
    verify_datapath,
)
from repro.explore import design_space, knee_point, pareto_front

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "DFGError",
    "ScheduleError",
    "InfeasibleScheduleError",
    "AllocationError",
    "LibraryError",
    "StabilityError",
    "SimulationError",
    # dfg
    "DFG",
    "DFGBuilder",
    "OpKind",
    "OpSpec",
    "OperationSet",
    "TimingModel",
    "standard_operation_set",
    "parse_behavior",
    "critical_path_length",
    "constant_fold",
    "eliminate_dead_code",
    "balance_tree",
    "merge_conditional_shared_ops",
    "common_subexpression_elimination",
    "add_loop_control",
    "LoopFolder",
    # library
    "ALUCell",
    "CellLibrary",
    "MuxCostTable",
    "ncr_like_library",
    "simple_fu_library",
    # schedules
    "Schedule",
    "schedule_asap",
    "schedule_alap",
    "list_schedule_resource_constrained",
    "list_schedule_time_constrained",
    "force_directed_schedule",
    "exact_schedule",
    "annealing_schedule",
    # core
    "GridPosition",
    "PlacementGrid",
    "TimeConstrainedLiapunov",
    "ResourceConstrainedLiapunov",
    "LiapunovWeights",
    "Trajectory",
    "MFSScheduler",
    "MFSResult",
    "mfs_schedule",
    "MFSAScheduler",
    "MFSAResult",
    "mfsa_synthesize",
    # allocation
    "Datapath",
    "bind_functional_units",
    "left_edge_allocate",
    "value_lifetimes",
    "verify_datapath",
    "compare_interconnect_styles",
    # exploration
    "design_space",
    "pareto_front",
    "knee_point",
]
