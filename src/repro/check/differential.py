"""Differential cross-validation against the baseline schedulers.

Runs the list, force-directed and (for small graphs) exact schedulers on
the same problem and checks the consistency relations that must hold
between independent implementations:

* every baseline that claims feasibility produces a *legal* schedule
  (audited by the same legality checker MFS results go through);
* every schedule respects the distribution lower bound
  ``units(kind) >= ceil(N_kind / cs)`` (skipped when the graph carries
  mutually exclusive branches, which legitimately share units);
* MFS never reports fewer total FUs than the exact branch-and-bound
  optimum — if it does, the FU accounting of one of the two is broken.

Disagreements in *quality* (MFS needing more units than a baseline) are
expected and reported as data, not violations; only impossible results
count as breaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import InfeasibleScheduleError, ReproError
from repro.dfg.analysis import TimingModel
from repro.dfg.graph import DFG
from repro.schedule.types import Schedule
from repro.schedule.exact import exact_schedule
from repro.schedule.force_directed import force_directed_schedule
from repro.schedule.list_scheduler import list_schedule_time_constrained
from repro.check.report import Violation
from repro.check.schedule import check_schedule_legality

#: Exact branch and bound is exponential; beyond this many operations the
#: differential pass skips it rather than stall the audit.
EXACT_OP_LIMIT = 24

#: Search-tree budget for the exact scheduler inside audits.  If the
#: limit is hit the result is best-effort, not optimal, so the optimum
#: comparison is skipped (``DifferentialOutcome.exact_is_optimal``).
EXACT_NODE_LIMIT = 300_000


@dataclass
class DifferentialOutcome:
    """What the cross-validation actually ran and measured."""

    baselines: Dict[str, Schedule] = field(default_factory=dict)
    skipped: Dict[str, str] = field(default_factory=dict)
    fu_totals: Dict[str, int] = field(default_factory=dict)
    exact_is_optimal: bool = False


def _has_exclusive_branches(dfg: DFG) -> bool:
    return any(dfg.node(name).branch for name in dfg.node_names())


def cross_validate(
    dfg: DFG,
    timing: TimingModel,
    cs: int,
    fu_counts: Optional[Dict[str, int]] = None,
    latency_l: Optional[int] = None,
    pipelined_kinds: frozenset = frozenset(),
    exact_op_limit: int = EXACT_OP_LIMIT,
    exact_node_limit: int = EXACT_NODE_LIMIT,
) -> tuple:
    """Cross-validate one time-constrained scheduling problem.

    ``fu_counts`` is the MFS/MFSA per-kind unit demand being audited (its
    total is compared against the exact optimum).  ``latency_l`` /
    ``pipelined_kinds`` describe the audited run: the baselines model
    neither functional nor structural pipelining, so their unit counts
    are not comparable to a pipelined run and the optimum comparison is
    skipped.  Returns ``(violations, outcome)``.
    """
    violations: List[Violation] = []
    outcome = DifferentialOutcome()
    exclusive = _has_exclusive_branches(dfg)

    def record(name: str, schedule: Schedule) -> None:
        outcome.baselines[name] = schedule
        for violation in check_schedule_legality(schedule):
            violations.append(
                Violation(
                    f"differential.{name}.{violation.code}",
                    violation.subject,
                    violation.message,
                )
            )
        usage = schedule.fu_usage()
        outcome.fu_totals[name] = sum(usage.values())
        if not exclusive:
            counts = dfg.count_by_kind()
            for kind, count in counts.items():
                lower = -(-count // cs)
                if usage.get(kind, 0) < lower:
                    violations.append(
                        Violation(
                            f"differential.{name}.lower-bound",
                            kind,
                            f"reports {usage.get(kind, 0)} units, the "
                            f"distribution lower bound is {lower}",
                        )
                    )

    try:
        record("list", list_schedule_time_constrained(dfg, timing, cs))
    except InfeasibleScheduleError as error:
        outcome.skipped["list"] = str(error)
    try:
        record("force-directed", force_directed_schedule(dfg, timing, cs))
    except (InfeasibleScheduleError, RecursionError) as error:
        outcome.skipped["force-directed"] = str(error)

    pipelined = latency_l is not None or bool(pipelined_kinds)
    run_exact = (
        len(dfg) <= exact_op_limit
        and not timing.chaining
        and not exclusive
        and not pipelined
    )
    if run_exact:
        try:
            stats: Dict[str, object] = {}
            exact = exact_schedule(
                dfg, timing, cs, node_limit=exact_node_limit, stats=stats
            )
            record("exact", exact)
            # A truncated search returns a legal but possibly suboptimal
            # schedule; only a complete one certifies the optimum.
            outcome.exact_is_optimal = bool(stats.get("complete"))
        except (InfeasibleScheduleError, ReproError) as error:
            outcome.skipped["exact"] = str(error)
    else:
        outcome.skipped["exact"] = (
            "graph too large, chained, pipelined, or carries exclusive "
            "branches"
        )

    if fu_counts is not None:
        audited_total = sum(fu_counts.values())
        outcome.fu_totals["audited"] = audited_total
        exact_total = outcome.fu_totals.get("exact")
        if (
            outcome.exact_is_optimal
            and exact_total is not None
            and audited_total < exact_total
        ):
            violations.append(
                Violation(
                    "differential.beats-exact",
                    dfg.name,
                    f"audited run reports {audited_total} total FUs, "
                    f"below the exact optimum {exact_total}: FU "
                    f"accounting of one scheduler is broken",
                )
            )
    return violations, outcome
