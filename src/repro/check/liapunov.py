"""Liapunov-descent replay checks (§2.2, §2.4).

The paper's stability theorem rests on two movement properties: each
operation is placed at the *minimum-energy* position of the move frame
the algorithm saw, and re-placements never increase an operation's
energy.  :class:`~repro.core.stability.Trajectory` raises on the first
breach; this checker replays the recorded trajectory and reports every
breach, plus bookkeeping defects the raising verifier does not look at
(a chosen position missing from its own alternatives list, or recorded
with an energy that disagrees with the alternatives entry).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.stability import Trajectory
from repro.check.report import Violation


def check_liapunov_descent(
    trajectory: Trajectory, tolerance: float = 1e-9
) -> List[Violation]:
    """Audit a recorded trajectory for the §2.2 movement properties."""
    violations: List[Violation] = []
    for event in trajectory:
        if not event.alternatives:
            continue
        energies = dict(event.alternatives)
        best = min(energies.values())
        if event.energy > best + tolerance:
            violations.append(
                Violation(
                    "liapunov.not-argmin",
                    event.node,
                    f"iteration {event.iteration}: took energy "
                    f"{event.energy}, but {best} was available in the "
                    f"move frame",
                )
            )
        recorded = energies.get(event.position)
        if recorded is None:
            violations.append(
                Violation(
                    "liapunov.position-not-in-frame",
                    event.node,
                    f"iteration {event.iteration}: chosen position "
                    f"{event.position} is not among the recorded "
                    f"move-frame alternatives",
                )
            )
        elif abs(recorded - event.energy) > tolerance:
            violations.append(
                Violation(
                    "liapunov.energy-mismatch",
                    event.node,
                    f"iteration {event.iteration}: recorded energy "
                    f"{event.energy} disagrees with the frame entry "
                    f"{recorded}",
                )
            )

    per_node: Dict[str, float] = {}
    for event in trajectory:
        previous = per_node.get(event.node)
        if previous is not None and event.energy > previous + tolerance:
            violations.append(
                Violation(
                    "liapunov.ascent",
                    event.node,
                    f"moved from energy {previous} to {event.energy}: "
                    f"Liapunov value increased along the trajectory",
                )
            )
        per_node[event.node] = event.energy
    return violations
