"""Kernel cross-validation: scalar and vector paths must be byte-identical.

The vector kernel (:mod:`repro.core.kernel`) is a pure performance
layer: same greedy placements, same tie-breaking, same IEEE association
in every accumulated energy, so the *whole result* — schedule starts,
Liapunov trajectory, datapath, cost — must be equal to the scalar
reference, not merely equivalent.  This module audits that claim the
same way the rest of :mod:`repro.check` audits the paper's invariants,
and backs the ``repro check --kernels`` CLI flag plus the property
suite in ``tests/property/test_property_kernel.py``.

One caveat is inherited from the mux-pruning fast path: with
``record_alternatives`` off, the vector kernel can skip whole columns
via a zero-mux lower bound, so the mux/operand *cache* counters (how
often the optimiser was consulted) legitimately differ between kernels
even though every placement and every cost agrees.  Counter comparison
therefore excludes ``mux``/``operand`` keys; everything else —
candidates evaluated, frames computed, register-estimator traffic —
must match exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.allocation.mux import clear_mux_memo
from repro.check.report import CheckReport
from repro.core import kernel as kernel_mod
from repro.perf import PerfCounters

#: Perf-counter key fragments excluded from cross-kernel comparison
#: (see the module docstring: pruning changes how often the mux
#: optimiser is *consulted*, never what it returns).
COUNTER_EXCLUDES = ("mux", "operand")


def comparable_counters(perf: PerfCounters) -> dict:
    """The perf counters that must match exactly across kernels."""
    return {
        key: value
        for key, value in perf.counters.items()
        if not any(part in key for part in COUNTER_EXCLUDES)
    }


def vector_available() -> bool:
    """Whether the vector kernel can run at all (numpy importable)."""
    return kernel_mod.HAVE_NUMPY


def check_mfs_kernels(
    dfg,
    timing,
    cs: int,
    mode: str = "time",
    latency_l: Optional[int] = None,
    pipelined_kinds=frozenset(),
) -> CheckReport:
    """Run MFS under both kernels and compare everything observable."""
    from repro.core.mfs import MFSScheduler

    report = CheckReport(target=f"MFS kernels {dfg.name} (cs={cs})")
    report.ran("kernel-availability")
    if not vector_available():
        return report

    results = {}
    perfs = {}
    for kern in ("scalar", "vector"):
        perfs[kern] = PerfCounters()
        results[kern] = MFSScheduler(
            dfg,
            timing,
            cs=cs,
            mode=mode,
            latency_l=latency_l,
            pipelined_kinds=pipelined_kinds,
            kernel=kern,
            perf=perfs[kern],
        ).run()
    _compare(report, results["scalar"], results["vector"], perfs)
    report.ran("kernel-fu-counts")
    if results["scalar"].fu_counts != results["vector"].fu_counts:
        report.add(
            "kernel-divergence",
            "fu_counts",
            f"scalar {results['scalar'].fu_counts} != "
            f"vector {results['vector'].fu_counts}",
        )
    return report


def check_mfsa_kernels(
    dfg,
    timing,
    library,
    cs: int,
    style: int = 1,
    weights=None,
    record_alternatives: bool = False,
) -> CheckReport:
    """Run MFSA under both kernels and compare everything observable.

    Each run starts with a cleared process-wide mux memo so the second
    kernel cannot ride the first one's cached optimisations.
    """
    from repro.core.mfsa import MFSAScheduler

    report = CheckReport(target=f"MFSA kernels {dfg.name} (cs={cs})")
    report.ran("kernel-availability")
    if not vector_available():
        return report

    results = {}
    perfs = {}
    for kern in ("scalar", "vector"):
        clear_mux_memo()
        perfs[kern] = PerfCounters()
        kwargs = {}
        if weights is not None:
            kwargs["weights"] = weights
        results[kern] = MFSAScheduler(
            dfg,
            timing,
            library,
            cs=cs,
            style=style,
            kernel=kern,
            perf=perfs[kern],
            record_alternatives=record_alternatives,
            **kwargs,
        ).run()
    scalar, vector = results["scalar"], results["vector"]
    _compare(report, scalar, vector, perfs)
    report.ran("kernel-datapath")
    if scalar.alu_labels() != vector.alu_labels():
        report.add(
            "kernel-divergence",
            "alu_labels",
            f"scalar {scalar.alu_labels()} != vector {vector.alu_labels()}",
        )
    if scalar.cost != vector.cost:
        report.add(
            "kernel-divergence",
            "cost",
            f"scalar {scalar.cost!r} != vector {vector.cost!r}",
        )
    return report


def _compare(report: CheckReport, scalar, vector, perfs) -> None:
    report.ran("kernel-schedule")
    if scalar.schedule.starts != vector.schedule.starts:
        diff = {
            op: (scalar.schedule.starts[op], vector.schedule.starts[op])
            for op in scalar.schedule.starts
            if scalar.schedule.starts[op] != vector.schedule.starts.get(op)
        }
        report.add(
            "kernel-divergence",
            "schedule.starts",
            f"{len(diff)} ops placed differently: {sorted(diff)[:5]}",
        )
    report.ran("kernel-trajectory")
    if scalar.trajectory != vector.trajectory:
        report.add(
            "kernel-divergence",
            "trajectory",
            "Liapunov trajectories differ "
            f"(scalar {len(scalar.trajectory)} points, "
            f"vector {len(vector.trajectory)})",
        )
    report.ran("kernel-counters")
    sc = comparable_counters(perfs["scalar"])
    vc = comparable_counters(perfs["vector"])
    if sc != vc:
        keys = sorted(
            key
            for key in set(sc) | set(vc)
            if sc.get(key) != vc.get(key)
        )
        report.add(
            "kernel-divergence",
            "perf-counters",
            f"counters differ on {keys[:6]}",
        )


# ----------------------------------------------------------------------
# Example and random-workload harnesses (``repro check --kernels``)
# ----------------------------------------------------------------------
def check_kernels_example(key: str) -> CheckReport:
    """Cross-validate both kernels on one paper example."""
    from repro.bench.suites import EXAMPLES
    from repro.dfg.analysis import TimingModel
    from repro.dfg.ops import standard_operation_set
    from repro.library.ncr import datapath_library

    spec = EXAMPLES[key]
    report = CheckReport(target=f"kernels {key} ({spec.description})")
    dfg = spec.build()
    library = datapath_library()
    for index, case in enumerate(spec.table1_cases):
        timing = TimingModel(
            ops=standard_operation_set(mul_latency=case.mul_latency),
            clock_period_ns=case.clock_ns,
        )
        sub = check_mfs_kernels(
            dfg,
            timing,
            cs=case.cs,
            latency_l=case.latency_l,
            pipelined_kinds=case.pipelined_kinds,
        )
        sub.target = f"{key} table1[{index}] (cs={case.cs})"
        _merge_sub(report, sub)
    mfsa_timing = TimingModel(
        ops=standard_operation_set(mul_latency=spec.mfsa_mul_latency),
        clock_period_ns=spec.mfsa_clock_ns,
    )
    for style in (1, 2):
        sub = check_mfsa_kernels(
            dfg, mfsa_timing, library, cs=spec.mfsa_cs, style=style
        )
        sub.target = f"{key} table2 style {style}"
        _merge_sub(report, sub)
    return report


def check_kernels_all_examples(
    keys: Optional[Sequence[str]] = None,
) -> CheckReport:
    """Cross-validate both kernels on the paper's six examples."""
    from repro.bench.suites import EXAMPLES

    report = CheckReport(target="kernel equivalence (paper examples)")
    for key in list(keys) if keys else sorted(EXAMPLES):
        _merge_sub(report, check_kernels_example(key))
    return report


def check_kernels_random(
    count: int = 10, seed: int = 0, n_ops: int = 24
) -> CheckReport:
    """Cross-validate both kernels on generator-produced workloads."""
    from repro.dfg.analysis import TimingModel, critical_path_length
    from repro.dfg.generators import random_dfg
    from repro.dfg.ops import standard_operation_set
    from repro.library.ncr import datapath_library

    timing = TimingModel(ops=standard_operation_set())
    library = datapath_library()
    report = CheckReport(
        target=f"kernel equivalence ({count} random DFGs, seed {seed})"
    )
    for index in range(count):
        dfg = random_dfg(seed=seed + index, n_ops=n_ops)
        cs = critical_path_length(dfg, timing) + 2 + (index % 5)
        sub = check_mfs_kernels(dfg, timing, cs=cs)
        sub.target = f"random[{index}] MFS (cs={cs})"
        _merge_sub(report, sub)
        sub = check_mfsa_kernels(
            dfg, timing, library, cs=cs, style=1 + (index % 2)
        )
        sub.target = f"random[{index}] MFSA (cs={cs})"
        _merge_sub(report, sub)
    return report


def _merge_sub(report: CheckReport, sub: CheckReport) -> None:
    for violation in sub.violations:
        report.add(
            violation.code,
            f"{sub.target} :: {violation.subject}",
            violation.message,
        )
    for name in sub.checks_run:
        report.ran(name)
