"""Allocation- and RTL-level consistency checks.

Wraps the static datapath verifier (binding capability, temporal
exclusivity per ALU, mux routing, register-lifetime sharing, controller
consistency) and extends it to the structural netlist: the materialised
RTL must reference only declared resources, and declare exactly the
resources the allocation produced.
"""

from __future__ import annotations

from typing import List

from repro.errors import RTLError
from repro.allocation.datapath import Datapath
from repro.allocation.verify import verify_datapath
from repro.check.report import Violation


def check_datapath_consistency(
    datapath: Datapath, expect_style2: bool = False
) -> List[Violation]:
    """Audit the allocated datapath structure (§5.6/§5.8 invariants)."""
    return [
        Violation("datapath.structure", datapath.schedule.dfg.name, message)
        for message in verify_datapath(datapath, expect_style2=expect_style2)
    ]


def check_netlist_consistency(datapath: Datapath) -> List[Violation]:
    """Audit the structural netlist implied by the datapath.

    * the netlist builds and passes its own pin-reference validation
      (every net's driver and sinks name declared components);
    * every ALU instance and every allocated register materialises as
      exactly one component — no resource is dropped or invented.
    """
    violations: List[Violation] = []
    try:
        from repro.rtl.netlist import build_netlist

        netlist = build_netlist(datapath)
        netlist.validate()
    except RTLError as error:
        return [
            Violation(
                "netlist.invalid", datapath.schedule.dfg.name, str(error)
            )
        ]

    alus = netlist.count("alu")
    if alus != len(datapath.instances):
        violations.append(
            Violation(
                "netlist.alu-count",
                datapath.schedule.dfg.name,
                f"netlist declares {alus} ALUs, allocation produced "
                f"{len(datapath.instances)}",
            )
        )
    registers = netlist.count("reg")
    if registers != datapath.registers.count:
        violations.append(
            Violation(
                "netlist.register-count",
                datapath.schedule.dfg.name,
                f"netlist declares {registers} registers, allocation "
                f"produced {datapath.registers.count}",
            )
        )
    # Every bound operation must appear on exactly one ALU component.
    for op, key in sorted(datapath.binding.items()):
        ops_of_key = [
            name
            for name, component in netlist.components.items()
            if component.kind == "alu" and op in component.params.get("ops", [])
        ]
        if not ops_of_key:
            violations.append(
                Violation(
                    "netlist.unbound-op",
                    op,
                    f"bound to ALU {key} but no netlist ALU component "
                    f"lists it",
                )
            )
        elif len(ops_of_key) > 1:
            violations.append(
                Violation(
                    "netlist.multiply-bound-op",
                    op,
                    f"listed by {len(ops_of_key)} ALU components "
                    f"({sorted(ops_of_key)})",
                )
            )
    return violations
