"""Violation and report value objects of the :mod:`repro.check` auditor.

Every checker in this package returns a flat list of
:class:`Violation` records rather than raising on the first failure:
an audit is most useful when it surfaces *all* broken invariants of a
design at once.  :class:`CheckReport` aggregates the violations of one
audited artifact together with the names of the checks that ran, so a
clean report also documents what was actually verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.errors import VerificationError


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    ``code`` is a dotted machine-readable identifier
    (``"schedule.precedence"``, ``"grid.ghost-occupant"``,
    ``"liapunov.not-argmin"``, …); ``subject`` names the node, instance
    or register concerned; ``message`` is the human-readable detail.
    """

    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.subject}: {self.message}"


@dataclass
class CheckReport:
    """Outcome of auditing one artifact (a run, a schedule, an example).

    ``target`` labels what was audited; ``checks_run`` lists the check
    families that executed (so an empty ``violations`` list is
    meaningful evidence, not a vacuous pass).
    """

    target: str
    violations: List[Violation] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the audit found no violation."""
        return not self.violations

    def add(self, code: str, subject: str, message: str) -> None:
        """Record one violation."""
        self.violations.append(Violation(code=code, subject=subject, message=message))

    def extend(self, violations: Iterable[Violation]) -> None:
        """Absorb violations produced by a checker function."""
        self.violations.extend(violations)

    def ran(self, check_name: str) -> None:
        """Record that a check family executed."""
        if check_name not in self.checks_run:
            self.checks_run.append(check_name)

    def merge(self, other: "CheckReport") -> None:
        """Fold another report (e.g. of a sub-artifact) into this one."""
        self.violations.extend(other.violations)
        for name in other.checks_run:
            self.ran(name)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable summary (one line per violation)."""
        status = "PASS" if self.ok else f"FAIL ({len(self.violations)} violations)"
        lines = [f"{self.target}: {status}  [checks: {', '.join(self.checks_run) or 'none'}]"]
        for violation in self.violations:
            lines.append(f"  {violation}")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` when any violation was found."""
        if not self.ok:
            raise VerificationError(self.render(), report=self)
