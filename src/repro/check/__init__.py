"""repro.check — cross-cutting invariant auditing (the paper's §2.2 claim,
made machine-checkable).

The paper's whole argument is a *stability* claim: every MFS/MFSA move
keeps the partial design inside the feasible region while monotonically
decreasing the Liapunov energy.  This package audits finished runs
against that claim end to end:

* **schedule legality** — data-dependence ordering, ASAP/ALAP
  containment, grid-occupancy consistency (folded functional-pipelining
  steps included), chaining delay within the clock period;
* **Liapunov descent** — the replayed trajectory is monotone and every
  placement was the minimum-energy move-frame position;
* **allocation consistency** — register lifetimes non-overlapping per
  register, mux/bus wiring matches the binding, the RTL netlist
  references only declared resources;
* **differential cross-validation** — results compared against the
  list / force-directed / exact baseline schedulers;
* **kernel cross-validation** — the numpy vector kernel audited as
  byte-identical to the scalar reference path (schedules, trajectories,
  datapaths, comparable perf counters) on the paper examples and random
  workloads (``repro check --kernels``).

Entry points: :func:`check_mfs_result` / :func:`check_mfsa_result` for
one run, :func:`check_schedule` for a bare schedule,
:func:`check_all_examples` / :func:`check_random_dfgs` for the harness
behind ``repro check``.  Schedulers expose the same audit as an opt-in
post-condition (``verify=True``).
"""

from repro.check.report import CheckReport, Violation
from repro.check.schedule import (
    check_frame_containment,
    check_grid_consistency,
    check_schedule_legality,
)
from repro.check.liapunov import check_liapunov_descent
from repro.check.allocation import (
    check_datapath_consistency,
    check_netlist_consistency,
)
from repro.check.differential import DifferentialOutcome, cross_validate
from repro.check.kernels import (
    check_kernels_all_examples,
    check_kernels_example,
    check_kernels_random,
    check_mfs_kernels,
    check_mfsa_kernels,
)
from repro.check.runner import (
    check_all_examples,
    check_example,
    check_mfs_result,
    check_mfsa_result,
    check_random_dfgs,
    check_schedule,
)

__all__ = [
    "CheckReport",
    "Violation",
    "check_schedule_legality",
    "check_frame_containment",
    "check_grid_consistency",
    "check_liapunov_descent",
    "check_datapath_consistency",
    "check_netlist_consistency",
    "cross_validate",
    "DifferentialOutcome",
    "check_mfs_result",
    "check_mfsa_result",
    "check_mfs_kernels",
    "check_mfsa_kernels",
    "check_kernels_example",
    "check_kernels_all_examples",
    "check_kernels_random",
    "check_schedule",
    "check_example",
    "check_all_examples",
    "check_random_dfgs",
]
