"""Schedule-legality and grid-occupancy invariant checks.

These mirror :meth:`repro.schedule.types.Schedule.validate` but collect
*every* violation instead of raising on the first, and go further than
the value object can: ASAP/ALAP containment is re-derived from the graph,
and a :class:`~repro.core.grid.PlacementGrid` is audited cell by cell
against the schedule it is supposed to mirror (folded
functional-pipelining steps included).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.dfg.analysis import alap_schedule, asap_schedule
from repro.errors import InfeasibleScheduleError
from repro.schedule.types import Schedule
from repro.core.grid import GridPosition, PlacementGrid
from repro.check.report import Violation


def check_schedule_legality(
    schedule: Schedule,
    resource_bounds: Optional[Mapping[str, int]] = None,
) -> List[Violation]:
    """Audit coverage, bounds, precedence, chaining and resource limits."""
    violations: List[Violation] = []
    dfg, timing = schedule.dfg, schedule.timing

    # Coverage: every node scheduled exactly once, no strays.
    scheduled = set(schedule.starts)
    nodes = set(dfg.node_names())
    for name in sorted(nodes - scheduled):
        violations.append(
            Violation("schedule.unscheduled", name, "node has no start step")
        )
    for name in sorted(scheduled - nodes):
        violations.append(
            Violation(
                "schedule.unknown-node", name, "schedule mentions unknown node"
            )
        )

    # Bounds: start within [1, cs], multi-cycle span within the budget.
    for name in sorted(scheduled & nodes):
        start = schedule.starts[name]
        latency = timing.latency(dfg.node(name).kind)
        if start < 1:
            violations.append(
                Violation(
                    "schedule.before-start",
                    name,
                    f"starts at step {start} (< 1)",
                )
            )
        if start + latency - 1 > schedule.cs:
            violations.append(
                Violation(
                    "schedule.exceeds-budget",
                    name,
                    f"latency {latency} starting at {start} exceeds the "
                    f"{schedule.cs}-step budget",
                )
            )

    # Precedence (chaining-aware, §5.4).
    for node in dfg:
        if node.name not in schedule.starts:
            continue
        start = schedule.starts[node.name]
        for pred in node.predecessor_names():
            if pred not in schedule.starts:
                continue
            pred_end = schedule.end(pred)
            if start > pred_end:
                continue
            chainable = (
                timing.chaining
                and start == pred_end
                and timing.latency(node.kind) == 1
                and timing.latency(dfg.node(pred).kind) == 1
            )
            if not chainable:
                violations.append(
                    Violation(
                        "schedule.precedence",
                        node.name,
                        f"step {start} does not follow predecessor {pred!r} "
                        f"finishing at step {pred_end}",
                    )
                )

    # Chained combinational delay must fit the clock period.
    if timing.chaining:
        period = timing.clock_period_ns
        offsets: Dict[str, float] = {}
        for name in dfg.topological_order():
            node = dfg.node(name)
            if name not in schedule.starts or timing.latency(node.kind) != 1:
                continue
            start = schedule.starts[name]
            incoming = 0.0
            for pred in node.predecessor_names():
                if (
                    pred in schedule.starts
                    and schedule.end(pred) == start
                    and pred in offsets
                ):
                    incoming = max(incoming, offsets[pred])
            offsets[name] = incoming + timing.delay_ns(node.kind)
            if offsets[name] > period + 1e-9:
                violations.append(
                    Violation(
                        "schedule.chain-delay",
                        name,
                        f"chained path takes {offsets[name]:.1f} ns at step "
                        f"{start}, longer than the {period} ns clock",
                    )
                )

    # Optional per-kind resource bounds (folding + exclusion aware).
    if resource_bounds is not None:
        for kind, used in schedule.fu_usage().items():
            limit = resource_bounds.get(kind)
            if limit is not None and used > limit:
                violations.append(
                    Violation(
                        "schedule.resource-bound",
                        kind,
                        f"uses {used} units, bound is {limit}",
                    )
                )
    return violations


def check_frame_containment(schedule: Schedule) -> List[Violation]:
    """Every start step must lie inside the node's [ASAP, ALAP] frame.

    The frames are re-derived from the graph, so this catches schedulers
    that drifted outside the §3.2 primary frame — something
    :meth:`Schedule.validate` cannot see.
    """
    violations: List[Violation] = []
    dfg, timing = schedule.dfg, schedule.timing
    try:
        asap = asap_schedule(dfg, timing)
        alap = alap_schedule(dfg, timing, schedule.cs)
    except InfeasibleScheduleError as error:
        return [
            Violation(
                "schedule.infeasible-frames",
                dfg.name,
                f"ASAP/ALAP infeasible for cs={schedule.cs}: {error}",
            )
        ]
    for name, start in schedule.starts.items():
        if name not in asap:
            continue  # unknown node, reported by the legality check
        if not asap[name] <= start <= alap[name]:
            violations.append(
                Violation(
                    "schedule.outside-frame",
                    name,
                    f"start {start} outside time frame "
                    f"[{asap[name]}, {alap[name]}]",
                )
            )
    return violations


def _expected_occupancy(
    schedule: Schedule,
    grid: PlacementGrid,
    placements: Mapping[str, GridPosition],
) -> Dict[Tuple[str, int, int], List[str]]:
    """Recompute (table, x, folded step) → occupants from the placements."""
    expected: Dict[Tuple[str, int, int], List[str]] = {}
    timing, dfg = schedule.timing, schedule.dfg
    for name, position in placements.items():
        latency = timing.latency(dfg.node(name).kind)
        for folded in grid.occupied_steps(position.table, position.y, latency):
            expected.setdefault((position.table, position.x, folded), []).append(name)
    return expected


def check_grid_consistency(
    schedule: Schedule,
    grid: PlacementGrid,
    placements: Mapping[str, GridPosition],
) -> List[Violation]:
    """Audit the placement grid against the schedule it produced.

    Checks, per §2.3/§5.5 occupancy rules:

    * every scheduled node is placed, at the step the schedule records;
    * placements sit inside the grid geometry (column and row bounds);
    * the grid's occupant lists match an independent recomputation from
      the placements — no ghost occupants left by asymmetric
      place/remove, no duplicate entries from folded spans;
    * no two non-mutually-exclusive operations share a cell.
    """
    violations: List[Violation] = []
    dfg, timing = schedule.dfg, schedule.timing

    for name in schedule.starts:
        position = placements.get(name)
        if position is None:
            violations.append(
                Violation("grid.unplaced", name, "scheduled but not placed")
            )
            continue
        if position.y != schedule.starts[name]:
            violations.append(
                Violation(
                    "grid.step-mismatch",
                    name,
                    f"placed at step {position.y}, scheduled at "
                    f"{schedule.starts[name]}",
                )
            )
        if not 1 <= position.x <= grid.columns(position.table):
            violations.append(
                Violation(
                    "grid.column-bound",
                    name,
                    f"column {position.x} outside table "
                    f"{position.table!r} ({grid.columns(position.table)} "
                    f"columns)",
                )
            )
        latency = timing.latency(dfg.node(name).kind)
        if position.y < 1 or position.y + latency - 1 > grid.cs:
            violations.append(
                Violation(
                    "grid.row-bound",
                    name,
                    f"span [{position.y}, {position.y + latency - 1}] "
                    f"outside the {grid.cs}-step grid",
                )
            )

    # Occupancy cross-check: grid state == recomputation from placements.
    expected = _expected_occupancy(schedule, grid, placements)
    seen_cells = set()
    for table in grid.tables():
        for x in range(1, grid.columns(table) + 1):
            fold_limit = (
                min(grid.cs, grid.latency_l) if grid.latency_l else grid.cs
            )
            for folded in range(1, fold_limit + 1):
                occupants = list(grid.occupants(table, x, folded))
                cell = (table, x, folded)
                seen_cells.add(cell)
                wanted = expected.get(cell, [])
                for name in set(occupants):
                    if occupants.count(name) > 1:
                        violations.append(
                            Violation(
                                "grid.duplicate-occupant",
                                name,
                                f"recorded {occupants.count(name)} times at "
                                f"{table}[{x}]@cs{folded}",
                            )
                        )
                if sorted(set(occupants)) != sorted(set(wanted)):
                    ghosts = set(occupants) - set(wanted)
                    missing = set(wanted) - set(occupants)
                    for name in sorted(ghosts):
                        violations.append(
                            Violation(
                                "grid.ghost-occupant",
                                name,
                                f"occupies {table}[{x}]@cs{folded} but its "
                                f"placement does not cover that cell",
                            )
                        )
                    for name in sorted(missing):
                        violations.append(
                            Violation(
                                "grid.missing-occupant",
                                name,
                                f"placement covers {table}[{x}]@cs{folded} "
                                f"but the grid does not record it",
                            )
                        )
                members = sorted(set(occupants))
                for i, first in enumerate(members):
                    for second in members[i + 1:]:
                        if not dfg.mutually_exclusive(first, second):
                            violations.append(
                                Violation(
                                    "grid.overlap",
                                    first,
                                    f"shares {table}[{x}]@cs{folded} with "
                                    f"non-exclusive {second!r}",
                                )
                            )
    for cell, names in expected.items():
        if cell not in seen_cells:
            for name in names:
                violations.append(
                    Violation(
                        "grid.out-of-grid",
                        name,
                        f"placement covers cell {cell} outside the grid",
                    )
                )
    return violations
