"""Composed audits: whole MFS/MFSA results, paper examples, random DFGs.

This is the layer the CLI (``repro check``), the ``verify=True``
scheduler post-condition and the test-suite fixtures call into.  Each
entry point assembles the per-invariant checkers of this package into a
single :class:`~repro.check.report.CheckReport`.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional

from repro.check.allocation import (
    check_datapath_consistency,
    check_netlist_consistency,
)
from repro.check.differential import cross_validate
from repro.check.liapunov import check_liapunov_descent
from repro.check.report import CheckReport
from repro.check.schedule import (
    check_frame_containment,
    check_grid_consistency,
    check_schedule_legality,
)


def check_mfs_result(
    result,
    resource_bounds: Optional[Mapping[str, int]] = None,
    differential: bool = False,
) -> CheckReport:
    """Audit one :class:`~repro.core.mfs.MFSResult` end to end."""
    schedule = result.schedule
    report = CheckReport(target=f"MFS {schedule.dfg.name} (cs={schedule.cs})")

    report.ran("schedule-legality")
    report.extend(check_schedule_legality(schedule, resource_bounds))
    if len(schedule.dfg):
        report.ran("frame-containment")
        report.extend(check_frame_containment(schedule))
        report.ran("grid-occupancy")
        report.extend(
            check_grid_consistency(schedule, result.grid, result.placements)
        )
    report.ran("liapunov-descent")
    report.extend(check_liapunov_descent(result.trajectory))

    if differential and len(schedule.dfg):
        report.ran("differential")
        violations, _outcome = cross_validate(
            schedule.dfg,
            schedule.timing,
            schedule.cs,
            fu_counts=dict(result.fu_counts),
            latency_l=schedule.latency_l,
            pipelined_kinds=frozenset(schedule.pipelined_kinds),
        )
        report.extend(violations)
    return report


def check_mfsa_result(result, differential: bool = False) -> CheckReport:
    """Audit one :class:`~repro.core.mfsa.MFSAResult` end to end."""
    schedule = result.schedule
    report = CheckReport(target=f"MFSA {schedule.dfg.name} (cs={schedule.cs})")

    report.ran("schedule-legality")
    report.extend(check_schedule_legality(schedule))
    report.ran("frame-containment")
    report.extend(check_frame_containment(schedule))
    report.ran("grid-occupancy")
    report.extend(
        check_grid_consistency(schedule, result.grid, result.placements)
    )
    report.ran("liapunov-descent")
    report.extend(check_liapunov_descent(result.trajectory))
    report.ran("datapath-consistency")
    report.extend(
        check_datapath_consistency(
            result.datapath, expect_style2=(result.style == 2)
        )
    )
    report.ran("netlist-consistency")
    report.extend(check_netlist_consistency(result.datapath))

    if differential:
        report.ran("differential")
        violations, _outcome = cross_validate(
            schedule.dfg,
            schedule.timing,
            schedule.cs,
            fu_counts=dict(schedule.fu_usage()),
            latency_l=schedule.latency_l,
            pipelined_kinds=frozenset(schedule.pipelined_kinds),
        )
        report.extend(violations)
    return report


def check_schedule(
    schedule, resource_bounds: Optional[Mapping[str, int]] = None
) -> CheckReport:
    """Audit a bare :class:`~repro.schedule.types.Schedule` (no grid)."""
    report = CheckReport(
        target=f"schedule {schedule.dfg.name} (cs={schedule.cs})"
    )
    report.ran("schedule-legality")
    report.extend(check_schedule_legality(schedule, resource_bounds))
    if len(schedule.dfg):
        report.ran("frame-containment")
        report.extend(check_frame_containment(schedule))
    return report


# ----------------------------------------------------------------------
# Paper-example and random-workload harnesses
# ----------------------------------------------------------------------
def check_example(key: str, differential: bool = True) -> CheckReport:
    """Audit every Table-1 MFS case and both MFSA styles of one example."""
    from repro.bench.suites import EXAMPLES
    from repro.bench.table1 import run_case
    from repro.bench.table2 import run_example

    spec = EXAMPLES[key]
    report = CheckReport(target=f"example {key} ({spec.description})")
    for index, case in enumerate(spec.table1_cases):
        result = run_case(spec, case)
        sub = check_mfs_result(result, differential=differential)
        sub.target = f"{key} table1[{index}] (cs={case.cs})"
        _merge_sub(report, sub)
    for style in (1, 2):
        result = run_example(spec, style)
        sub = check_mfsa_result(result, differential=differential)
        sub.target = f"{key} table2 style {style}"
        _merge_sub(report, sub)
    return report


def check_all_examples(
    keys: Optional[Iterable[str]] = None, differential: bool = True
) -> List[CheckReport]:
    """Audit the paper's six examples (or the given subset)."""
    from repro.bench.suites import EXAMPLES

    return [
        check_example(key, differential=differential)
        for key in (list(keys) if keys else sorted(EXAMPLES))
    ]


def check_random_dfgs(
    count: int = 10,
    seed: int = 0,
    n_ops: int = 24,
    differential: bool = True,
) -> CheckReport:
    """Audit MFS and MFSA over generator-produced random workloads."""
    from repro.dfg.analysis import TimingModel, critical_path_length
    from repro.dfg.generators import random_dfg
    from repro.dfg.ops import standard_operation_set
    from repro.core.mfs import MFSScheduler
    from repro.core.mfsa import MFSAScheduler
    from repro.library.ncr import datapath_library

    timing = TimingModel(ops=standard_operation_set())
    library = datapath_library()
    report = CheckReport(target=f"{count} random DFGs (seed {seed})")
    for index in range(count):
        dfg = random_dfg(seed=seed + index, n_ops=n_ops)
        cs = critical_path_length(dfg, timing) + (index % 3)
        mfs = MFSScheduler(dfg, timing, cs=cs, mode="time").run()
        sub = check_mfs_result(mfs, differential=differential)
        sub.target = f"random[{index}] MFS (cs={cs})"
        _merge_sub(report, sub)
        mfsa = MFSAScheduler(dfg, timing, library, cs=cs).run()
        sub = check_mfsa_result(mfsa, differential=differential)
        sub.target = f"random[{index}] MFSA (cs={cs})"
        _merge_sub(report, sub)
    return report


def _merge_sub(report: CheckReport, sub: CheckReport) -> None:
    """Merge a sub-report, prefixing violation subjects with its target."""
    for violation in sub.violations:
        report.add(
            violation.code,
            f"{sub.target} :: {violation.subject}",
            violation.message,
        )
    for name in sub.checks_run:
        report.ran(name)
