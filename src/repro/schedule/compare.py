"""Schedule comparison and diffing.

Ablation studies and design-space exploration constantly ask "what did
this knob actually change?".  :func:`diff_schedules` answers precisely:
which operations moved (and by how much), how the per-kind FU demand
shifted, and how the makespans compare — for any two schedules over the
same DFG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ScheduleError
from repro.schedule.types import Schedule


@dataclass(frozen=True)
class OpMove:
    """One operation whose start step differs between two schedules."""

    op: str
    kind: str
    before: int
    after: int

    @property
    def delta(self) -> int:
        return self.after - self.before


@dataclass
class ScheduleDiff:
    """Structured difference between two schedules of the same DFG."""

    moves: List[OpMove]
    fu_before: Dict[str, int]
    fu_after: Dict[str, int]
    makespan_before: int
    makespan_after: int

    @property
    def identical(self) -> bool:
        return not self.moves

    def fu_delta(self) -> Dict[str, int]:
        """Per-kind unit-count change (after − before; 0 entries dropped)."""
        kinds = set(self.fu_before) | set(self.fu_after)
        return {
            kind: self.fu_after.get(kind, 0) - self.fu_before.get(kind, 0)
            for kind in sorted(kinds)
            if self.fu_after.get(kind, 0) != self.fu_before.get(kind, 0)
        }

    def total_displacement(self) -> int:
        """Sum of absolute start-step changes (schedule distance metric)."""
        return sum(abs(move.delta) for move in self.moves)


def diff_schedules(before: Schedule, after: Schedule) -> ScheduleDiff:
    """Diff two schedules of the same DFG.

    Raises :class:`ScheduleError` if the schedules cover different
    operation sets (they must come from the same graph).
    """
    if set(before.starts) != set(after.starts):
        raise ScheduleError(
            "cannot diff schedules over different operation sets"
        )
    moves = [
        OpMove(
            op=name,
            kind=before.dfg.node(name).kind,
            before=before.start(name),
            after=after.start(name),
        )
        for name in sorted(before.starts)
        if before.start(name) != after.start(name)
    ]
    return ScheduleDiff(
        moves=moves,
        fu_before=before.fu_usage(),
        fu_after=after.fu_usage(),
        makespan_before=before.makespan(),
        makespan_after=after.makespan(),
    )


def render_diff(diff: ScheduleDiff) -> str:
    """Human-readable rendering of a schedule diff."""
    if diff.identical:
        return "schedules are identical"
    lines = [
        f"{len(diff.moves)} operations moved "
        f"(total displacement {diff.total_displacement()} steps); "
        f"makespan {diff.makespan_before} -> {diff.makespan_after}"
    ]
    for move in diff.moves:
        lines.append(
            f"  {move.op} ({move.kind}): cs{move.before} -> cs{move.after} "
            f"({move.delta:+d})"
        )
    delta = diff.fu_delta()
    if delta:
        changes = ", ".join(f"{k}: {v:+d}" for k, v in delta.items())
        lines.append(f"  FU demand change: {changes}")
    return "\n".join(lines)
