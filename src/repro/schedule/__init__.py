"""Schedule representation and baseline scheduling algorithms.

The package hosts the *substrate* schedulers the paper compares against or
builds upon:

* :mod:`repro.schedule.types` — the :class:`~repro.schedule.types.Schedule`
  value object and its validator;
* :mod:`repro.schedule.asap_alap` — trivial ASAP/ALAP schedulers;
* :mod:`repro.schedule.list_scheduler` — resource- and time-constrained
  list scheduling (the classic baseline, paper ref. [4]);
* :mod:`repro.schedule.force_directed` — force-directed scheduling
  (HAL, paper ref. [6]);
* :mod:`repro.schedule.exact` — branch-and-bound optimal scheduler for
  small graphs (stand-in for the ILP formulations, paper refs. [9-11]).
"""

from repro.schedule.types import Schedule
from repro.schedule.asap_alap import schedule_asap, schedule_alap
from repro.schedule.list_scheduler import (
    list_schedule_resource_constrained,
    list_schedule_time_constrained,
)
from repro.schedule.force_directed import force_directed_schedule
from repro.schedule.exact import exact_schedule
from repro.schedule.annealing import annealing_schedule
from repro.schedule.compare import ScheduleDiff, diff_schedules, render_diff

__all__ = [
    "Schedule",
    "schedule_asap",
    "schedule_alap",
    "list_schedule_resource_constrained",
    "list_schedule_time_constrained",
    "force_directed_schedule",
    "exact_schedule",
    "annealing_schedule",
    "ScheduleDiff",
    "diff_schedules",
    "render_diff",
]
