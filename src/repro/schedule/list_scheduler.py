"""Classic list scheduling — the baseline class of paper ref. [4] (Slicer).

Two entry points:

* :func:`list_schedule_resource_constrained` — given per-kind FU bounds,
  produce the shortest schedule the priority list yields;
* :func:`list_schedule_time_constrained` — given a step budget ``cs``,
  find small per-kind bounds under which the resource-constrained pass
  fits, mirroring how list schedulers are used for the Table-1 metric.

Priorities follow the common "distance to sink" rule: operations on longer
remaining paths go first.  Multi-cycle operations occupy their unit for
their full latency; mutually exclusive operations (§5.1) may share a unit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import InfeasibleScheduleError
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.graph import DFG
from repro.schedule.types import Schedule


def _path_lengths_to_sink(dfg: DFG, timing: TimingModel) -> Dict[str, int]:
    """Longest latency-weighted path from each node to any sink."""
    lengths: Dict[str, int] = {}
    for name in reversed(dfg.topological_order()):
        latency = timing.latency(dfg.node(name).kind)
        succ_best = max(
            (lengths[s] for s in dfg.successors(name)), default=0
        )
        lengths[name] = latency + succ_best
    return lengths


class _UsageTable:
    """Per-(kind, step) occupancy with mutual-exclusion-aware slot packing."""

    def __init__(self, dfg: DFG) -> None:
        self._dfg = dfg
        self._occupants: Dict[Tuple[str, int], List[str]] = {}

    def units_needed(self, kind: str, step: int, extra: Optional[str] = None) -> int:
        """Units of ``kind`` needed at ``step`` (optionally with ``extra`` added)."""
        members = list(self._occupants.get((kind, step), []))
        if extra is not None:
            members.append(extra)
        units: List[List[str]] = []
        for member in members:
            for unit in units:
                if all(self._dfg.mutually_exclusive(member, other) for other in unit):
                    unit.append(member)
                    break
            else:
                units.append([member])
        return len(units)

    def occupy(self, kind: str, step: int, name: str) -> None:
        self._occupants.setdefault((kind, step), []).append(name)


def _list_schedule(
    dfg: DFG,
    timing: TimingModel,
    bounds: Mapping[str, int],
    max_steps: int,
) -> Tuple[Schedule, Dict[str, int]]:
    """Core list-scheduling pass.

    Returns the schedule plus per-kind *deferral counts*: how often a
    ready operation had to wait because its kind's bound was exhausted —
    the signal the time-constrained wrapper uses to pick which bound to
    raise.
    """
    priority = _path_lengths_to_sink(dfg, timing)
    order_index = {name: i for i, name in enumerate(dfg.node_names())}

    unscheduled = set(dfg.node_names())
    starts: Dict[str, int] = {}
    usage = _UsageTable(dfg)
    deferred: Dict[str, int] = {}
    step = 1
    while unscheduled:
        if step > max_steps:
            raise InfeasibleScheduleError(
                f"list scheduler exceeded {max_steps} steps on {dfg.name!r}"
            )
        ready = [
            name
            for name in unscheduled
            if all(
                pred in starts
                and starts[pred] + timing.latency(dfg.node(pred).kind) <= step
                for pred in dfg.predecessors(name)
            )
        ]
        ready.sort(key=lambda n: (-priority[n], order_index[n]))
        for name in ready:
            kind = dfg.node(name).kind
            latency = timing.latency(kind)
            limit = bounds.get(kind)
            span = range(step, step + latency)
            if limit is not None and any(
                usage.units_needed(kind, s, extra=name) > limit for s in span
            ):
                deferred[kind] = deferred.get(kind, 0) + 1
                continue
            starts[name] = step
            for s in span:
                usage.occupy(kind, s, name)
            unscheduled.discard(name)
        step += 1

    makespan = max(
        starts[n] + timing.latency(dfg.node(n).kind) - 1 for n in starts
    ) if starts else 0
    schedule = Schedule(
        dfg=dfg, timing=timing, cs=max(makespan, 1), starts=starts
    )
    return schedule, deferred


def list_schedule_resource_constrained(
    dfg: DFG,
    timing: TimingModel,
    bounds: Mapping[str, int],
    max_steps: Optional[int] = None,
) -> Schedule:
    """List schedule under per-kind FU ``bounds``.

    Kinds missing from ``bounds`` are unconstrained.  Raises
    :class:`InfeasibleScheduleError` if ``max_steps`` is exceeded.
    """
    if max_steps is None:
        max_steps = max(critical_path_length(dfg, timing), 1) + len(dfg)
    schedule, _deferred = _list_schedule(dfg, timing, bounds, max_steps)
    return schedule


def list_schedule_time_constrained(
    dfg: DFG,
    timing: TimingModel,
    cs: int,
    max_rounds: int = 200,
) -> Schedule:
    """Find small per-kind bounds under which a list schedule fits ``cs`` steps.

    Starts from the distribution lower bound ``⌈N_j / cs⌉`` and repeatedly
    increments the bound of the kind that blocked the longest-priority
    unscheduled work, until the schedule fits.
    """
    if critical_path_length(dfg, timing) > cs:
        raise InfeasibleScheduleError(
            f"critical path of {dfg.name!r} exceeds {cs} steps"
        )
    counts = dfg.count_by_kind()
    bounds: Dict[str, int] = {
        kind: max(1, -(-count // cs)) for kind, count in counts.items()
    }
    for _round in range(max_rounds):
        schedule, deferred = _list_schedule(
            dfg, timing, bounds, max_steps=cs + len(dfg)
        )
        if schedule.makespan() <= cs:
            return Schedule(
                dfg=dfg, timing=timing, cs=cs, starts=schedule.starts
            )
        if not deferred:
            # Nothing was resource-blocked, yet the budget is exceeded —
            # impossible when the critical path fits (checked above).
            raise InfeasibleScheduleError(
                f"list scheduler cannot fit {dfg.name!r} in {cs} steps"
            )
        # Raise the bound that blocked the most ready operations.
        bump = max(sorted(deferred), key=deferred.__getitem__)
        bounds[bump] += 1
    raise InfeasibleScheduleError(
        f"time-constrained list scheduling failed on {dfg.name!r} after "
        f"{max_rounds} bound adjustments"
    )
