"""Exact (branch-and-bound) time-constrained scheduler.

Stand-in for the ILP formulations the paper cites ([9-11]): it finds, for a
given step budget ``cs``, a schedule minimising the weighted FU count

    Σ_kind  weight(kind) · units(kind)

by exhaustive search with pruning.  Intended for small graphs (tens of
operations); the benchmark harness uses it to certify that MFS results are
optimal or near-optimal on the paper's examples.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.errors import InfeasibleScheduleError
from repro.dfg.analysis import TimingModel, alap_schedule, asap_schedule
from repro.dfg.graph import DFG
from repro.schedule.types import Schedule


def exact_schedule(
    dfg: DFG,
    timing: TimingModel,
    cs: int,
    weights: Optional[Mapping[str, float]] = None,
    node_limit: int = 2_000_000,
    stats: Optional[Dict[str, object]] = None,
) -> Schedule:
    """Minimum-weighted-FU schedule in ``cs`` steps via branch and bound.

    ``weights`` defaults to 1 per kind (minimise total FU count).
    ``node_limit`` bounds the search-tree size; the best solution found so
    far is returned if the limit is hit (the search is seeded with ASAP, so
    a valid schedule always exists).

    When a ``stats`` dict is supplied it receives ``visited`` (search-tree
    nodes expanded) and ``complete`` (whether the search exhausted the
    tree, i.e. the result is certified optimal rather than best-effort).
    Callers that compare other schedulers against "the optimum" — the
    :mod:`repro.check` differential audit — must only trust runs with
    ``complete=True``.
    """
    asap = asap_schedule(dfg, timing)
    alap = alap_schedule(dfg, timing, cs)  # raises if infeasible
    order = dfg.topological_order()
    kind_of = {name: dfg.node(name).kind for name in order}
    latency_of = {name: timing.latency(kind_of[name]) for name in order}
    weight_of = dict(weights) if weights else {}
    for kind in dfg.kinds_used():
        weight_of.setdefault(kind, 1.0)

    # Remaining-work lower bound: after position i, kind j still has
    # remaining_ops[i][j] operations to place, needing >= ceil(n/cs) units.
    remaining: Dict[int, Dict[str, int]] = {len(order): {}}
    for i in range(len(order) - 1, -1, -1):
        counts = dict(remaining[i + 1])
        counts[kind_of[order[i]]] = counts.get(kind_of[order[i]], 0) + 1
        remaining[i] = counts

    usage: Dict[Tuple[str, int], int] = {}
    units: Dict[str, int] = {kind: 0 for kind in dfg.kinds_used()}
    starts: Dict[str, int] = {}
    best_cost = float("inf")
    best_starts: Optional[Dict[str, int]] = None
    visited = 0

    def objective(current_units: Mapping[str, int]) -> float:
        return sum(weight_of[k] * u for k, u in current_units.items())

    def lower_bound(index: int) -> float:
        bound = 0.0
        for kind, count in remaining[index].items():
            need = max(units[kind], -(-count // cs))
            bound += weight_of[kind] * need
        for kind, used in units.items():
            if kind not in remaining[index]:
                bound += weight_of[kind] * used
        return bound

    def dfs(index: int) -> None:
        nonlocal best_cost, best_starts, visited
        visited += 1
        if visited > node_limit:
            return
        if index == len(order):
            cost = objective(units)
            if cost < best_cost:
                best_cost = cost
                best_starts = dict(starts)
            return
        if lower_bound(index) >= best_cost:
            return
        name = order[index]
        latency = latency_of[name]
        earliest = asap[name]
        for pred in dfg.predecessors(name):
            earliest = max(earliest, starts[pred] + latency_of[pred])
        for step in range(earliest, alap[name] + 1):
            span = range(step, step + latency)
            touched = []
            for s in span:
                key = (kind_of[name], s)
                usage[key] = usage.get(key, 0) + 1
                touched.append(key)
            old_units = units[kind_of[name]]
            units[kind_of[name]] = max(
                old_units, max(usage[key] for key in touched)
            )
            starts[name] = step
            dfs(index + 1)
            del starts[name]
            units[kind_of[name]] = old_units
            for key in touched:
                usage[key] -= 1
        return

    dfs(0)
    if stats is not None:
        stats["visited"] = visited
        stats["complete"] = visited <= node_limit
    if best_starts is None:
        raise InfeasibleScheduleError(
            f"exact scheduler found no schedule for {dfg.name!r} in {cs} steps"
        )
    return Schedule(dfg=dfg, timing=timing, cs=cs, starts=best_starts)
