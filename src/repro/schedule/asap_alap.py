"""Trivial ASAP and ALAP schedulers wrapped as :class:`Schedule` producers.

These are both analysis ingredients of MFS (Step 1) and the simplest
baselines (the FACET system of paper ref. [2] used an ASAP schedule).
"""

from __future__ import annotations

from typing import Optional

from repro.dfg.analysis import (
    TimingModel,
    alap_schedule,
    asap_schedule,
    critical_path_length,
)
from repro.dfg.graph import DFG
from repro.schedule.types import Schedule


def schedule_asap(
    dfg: DFG, timing: TimingModel, cs: Optional[int] = None
) -> Schedule:
    """As-soon-as-possible schedule.

    ``cs`` defaults to the critical-path length (the tightest budget the
    schedule fits in).
    """
    starts = asap_schedule(dfg, timing)
    if cs is None:
        cs = critical_path_length(dfg, timing)
    return Schedule(dfg=dfg, timing=timing, cs=max(cs, 1), starts=starts)


def schedule_alap(dfg: DFG, timing: TimingModel, cs: Optional[int] = None) -> Schedule:
    """As-late-as-possible schedule within ``cs`` steps.

    ``cs`` defaults to the critical-path length.
    """
    if cs is None:
        cs = critical_path_length(dfg, timing)
    starts = alap_schedule(dfg, timing, cs)
    return Schedule(dfg=dfg, timing=timing, cs=max(cs, 1), starts=starts)
