"""Simulated-annealing scheduler — the probabilistic baseline (paper
ref. [8], Devadas & Newton).

The paper positions MFS/MFSA *against* annealing: "we use the Liapunov
(energy) function as the guiding mechanism … while avoiding the
probabilistic exploration and tuning problems in some energy-based
approaches such as annealing".  This module provides that comparison
point: a classic SA over time-constrained schedules whose energy is the
weighted FU count, so the benchmarks can measure both the quality gap
(small) and the runtime gap (large) the paper claims.

Deterministic for a fixed seed.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Mapping, Optional

from repro.dfg.analysis import (
    TimingModel,
    alap_schedule,
    asap_schedule,
    type_concurrency,
)
from repro.dfg.graph import DFG
from repro.schedule.types import Schedule


def _energy(
    dfg: DFG,
    timing: TimingModel,
    starts: Mapping[str, int],
    weights: Mapping[str, float],
) -> float:
    usage = type_concurrency(dfg, starts, timing)
    return sum(weights.get(kind, 1.0) * count for kind, count in usage.items())


def annealing_schedule(
    dfg: DFG,
    timing: TimingModel,
    cs: int,
    weights: Optional[Mapping[str, float]] = None,
    seed: int = 0,
    initial_temperature: float = 4.0,
    cooling: float = 0.95,
    moves_per_temperature: int = 60,
    final_temperature: float = 0.05,
) -> Schedule:
    """Time-constrained schedule via simulated annealing.

    The move set shifts one operation to a random feasible step within its
    dynamic window (placed predecessors/successors respected), accepting
    uphill moves with the Metropolis criterion.
    """
    asap = asap_schedule(dfg, timing)
    alap = alap_schedule(dfg, timing, cs)  # raises if infeasible
    weights = dict(weights or {})
    rng = random.Random(seed)

    starts: Dict[str, int] = dict(asap)
    names = list(dfg.node_names())
    latency = {name: timing.latency(dfg.node(name).kind) for name in names}

    def window(name: str) -> range:
        lo = asap[name]
        hi = alap[name]
        for pred in dfg.predecessors(name):
            lo = max(lo, starts[pred] + latency[pred])
        for succ in dfg.successors(name):
            hi = min(hi, starts[succ] - latency[name])
        return range(lo, hi + 1)

    energy = _energy(dfg, timing, starts, weights)
    best_energy = energy
    best_starts = dict(starts)

    temperature = initial_temperature
    while temperature > final_temperature:
        for _move in range(moves_per_temperature):
            name = rng.choice(names)
            feasible = window(name)
            if len(feasible) <= 1:
                continue
            old_step = starts[name]
            new_step = rng.choice([s for s in feasible if s != old_step])
            starts[name] = new_step
            new_energy = _energy(dfg, timing, starts, weights)
            delta = new_energy - energy
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                energy = new_energy
                if energy < best_energy:
                    best_energy = energy
                    best_starts = dict(starts)
            else:
                starts[name] = old_step
        temperature *= cooling

    schedule = Schedule(dfg=dfg, timing=timing, cs=cs, starts=best_starts)
    schedule.validate()
    return schedule
