"""The :class:`Schedule` value object and its validator.

A schedule maps every DFG node to a start control step.  Validation checks
the full set of invariants the paper's algorithms must maintain:

* every node is scheduled exactly once, within ``[1, cs]``;
* multi-cycle nodes fit entirely within the time budget;
* data dependences hold, including the chaining rule (§5.4): a dependent
  pair may share a step only when chaining is enabled and the accumulated
  combinational delay of the within-step chain fits the clock period;
* optional per-kind resource bounds hold (with mutual exclusion, §5.1, and
  functional-pipelining folding, §5.5.2, taken into account).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import ScheduleError
from repro.dfg.analysis import (
    TimingModel,
    schedule_makespan,
    type_concurrency,
)
from repro.dfg.graph import DFG


@dataclass
class Schedule:
    """A start-step assignment for every operation of a DFG.

    Attributes
    ----------
    dfg:
        The scheduled graph.
    timing:
        Latency/delay model the schedule was built under.
    cs:
        Number of control steps available (the time constraint).
    starts:
        Node name → 1-based start step.
    latency_l:
        Functional-pipelining initiation interval ``L`` (``None`` when the
        schedule is not functionally pipelined).
    pipelined_kinds:
        Kinds executed on structurally pipelined FUs (a new operation may
        enter such a unit every step even though latency > 1, §5.5.1).
    """

    dfg: DFG
    timing: TimingModel
    cs: int
    starts: Dict[str, int]
    latency_l: Optional[int] = None
    pipelined_kinds: frozenset = frozenset()

    def __post_init__(self) -> None:
        self.starts = dict(self.starts)
        self.pipelined_kinds = frozenset(self.pipelined_kinds)

    # ------------------------------------------------------------------
    def start(self, name: str) -> int:
        """Start step of node ``name``."""
        return self.starts[name]

    def end(self, name: str) -> int:
        """Last occupied step of node ``name``."""
        return self.starts[name] + self.timing.latency(self.dfg.node(name).kind) - 1

    def makespan(self) -> int:
        """Last occupied control step overall."""
        return schedule_makespan(self.dfg, self.starts, self.timing)

    def fu_usage(self) -> Dict[str, int]:
        """FUs of each kind this schedule needs (§ Table 1 metric)."""
        return type_concurrency(
            self.dfg,
            self.starts,
            self.timing,
            self.latency_l,
            self.pipelined_kinds,
        )

    def steps_of(self, step: int) -> Dict[str, str]:
        """Nodes active at ``step`` → their kind (for rendering)."""
        active: Dict[str, str] = {}
        for name, start in self.starts.items():
            node = self.dfg.node(name)
            if start <= step <= start + self.timing.latency(node.kind) - 1:
                active[name] = node.kind
        return active

    # ------------------------------------------------------------------
    def validate(self, resource_bounds: Optional[Mapping[str, int]] = None) -> None:
        """Check every schedule invariant; raise :class:`ScheduleError` if any fails."""
        self._check_coverage()
        self._check_bounds()
        self._check_precedence()
        if self.timing.chaining:
            self._check_chain_delays()
        if resource_bounds is not None:
            self._check_resources(resource_bounds)

    def _check_coverage(self) -> None:
        scheduled = set(self.starts)
        nodes = set(self.dfg.node_names())
        missing = nodes - scheduled
        if missing:
            raise ScheduleError(f"unscheduled nodes: {sorted(missing)}")
        extra = scheduled - nodes
        if extra:
            raise ScheduleError(f"schedule mentions unknown nodes: {sorted(extra)}")

    def _check_bounds(self) -> None:
        for name, start in self.starts.items():
            latency = self.timing.latency(self.dfg.node(name).kind)
            if start < 1:
                raise ScheduleError(f"node {name!r} starts before step 1 ({start})")
            if start + latency - 1 > self.cs:
                raise ScheduleError(
                    f"node {name!r} (latency {latency}) starting at {start} "
                    f"exceeds the {self.cs}-step budget"
                )

    def _check_precedence(self) -> None:
        for node in self.dfg:
            start = self.starts[node.name]
            for pred in node.predecessor_names():
                pred_end = self.end(pred)
                if start > pred_end:
                    continue
                chainable = (
                    self.timing.chaining
                    and start == pred_end
                    and self.timing.latency(node.kind) == 1
                    and self.timing.latency(self.dfg.node(pred).kind) == 1
                )
                if not chainable:
                    raise ScheduleError(
                        f"node {node.name!r} at step {start} does not follow "
                        f"its predecessor {pred!r} finishing at step {pred_end}"
                    )

    def _check_chain_delays(self) -> None:
        period = self.timing.clock_period_ns
        offsets: Dict[str, float] = {}
        for name in self.dfg.topological_order():
            node = self.dfg.node(name)
            if self.timing.latency(node.kind) != 1:
                continue
            start = self.starts[name]
            incoming = 0.0
            for pred in node.predecessor_names():
                if self.end(pred) == start and pred in offsets:
                    incoming = max(incoming, offsets[pred])
            offsets[name] = incoming + self.timing.delay_ns(node.kind)
            if offsets[name] > period + 1e-9:
                raise ScheduleError(
                    f"chained path through {name!r} at step {start} takes "
                    f"{offsets[name]:.1f} ns, longer than the {period} ns clock"
                )

    def _check_resources(self, bounds: Mapping[str, int]) -> None:
        usage = self.fu_usage()
        for kind, used in usage.items():
            limit = bounds.get(kind)
            if limit is not None and used > limit:
                raise ScheduleError(
                    f"kind {kind!r} uses {used} units, bound is {limit}"
                )

    # ------------------------------------------------------------------
    def copy(self) -> "Schedule":
        """Independent copy of the schedule."""
        return Schedule(
            dfg=self.dfg,
            timing=self.timing,
            cs=self.cs,
            starts=dict(self.starts),
            latency_l=self.latency_l,
            pipelined_kinds=self.pipelined_kinds,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule({self.dfg.name!r}, cs={self.cs}, "
            f"makespan={self.makespan()}, fu={self.fu_usage()})"
        )
