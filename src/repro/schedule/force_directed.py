"""Force-directed scheduling (FDS) — the HAL baseline (paper ref. [6]).

Paulin & Knight's algorithm balances the *distribution graphs* of each
operation kind: every unfixed operation contributes a uniform probability
over its time frame; fixing an operation to the step with the least total
"force" levels concurrency across steps, which minimises the FU count under
a time constraint.

This implementation follows the original formulation:

* probabilities spread over ``[ASAP, ALAP]`` start steps, multi-cycle
  operations smearing over their active steps;
* self force plus predecessor/successor implicit forces (one level deep,
  as in the original paper);
* frames shrink transitively after every fixing.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.errors import InfeasibleScheduleError
from repro.dfg.analysis import TimingModel, alap_schedule, asap_schedule
from repro.dfg.graph import DFG
from repro.schedule.types import Schedule


def _distribution(
    dfg: DFG,
    timing: TimingModel,
    frames: Mapping[str, Tuple[int, int]],
    cs: int,
) -> Dict[str, List[float]]:
    """Distribution graph per kind: DG[kind][t-1] for t in 1..cs."""
    dg: Dict[str, List[float]] = {}
    for node in dfg:
        lo, hi = frames[node.name]
        latency = timing.latency(node.kind)
        weight = 1.0 / (hi - lo + 1)
        row = dg.setdefault(node.kind, [0.0] * cs)
        for start in range(lo, hi + 1):
            for step in range(start, start + latency):
                row[step - 1] += weight
    return dg


def _probabilities(
    lo: int, hi: int, latency: int, cs: int
) -> List[float]:
    """Active-step probability vector of one operation."""
    row = [0.0] * cs
    weight = 1.0 / (hi - lo + 1)
    for start in range(lo, hi + 1):
        for step in range(start, start + latency):
            row[step - 1] += weight
    return row


def _force(
    dg_row: List[float], before: List[float], after: List[float]
) -> float:
    """Force of changing one operation's probability vector."""
    return sum(
        dg_row[i] * (after[i] - before[i]) for i in range(len(dg_row))
    )


def force_directed_schedule(
    dfg: DFG, timing: TimingModel, cs: int
) -> Schedule:
    """Time-constrained force-directed schedule in ``cs`` steps."""
    asap = asap_schedule(dfg, timing)
    alap = alap_schedule(dfg, timing, cs)
    frames: Dict[str, Tuple[int, int]] = {
        name: (asap[name], alap[name]) for name in asap
    }
    unfixed = set(dfg.node_names())
    order_index = {name: i for i, name in enumerate(dfg.node_names())}

    def shrink(name: str, lo: int, hi: int) -> None:
        """Narrow a frame and propagate the tightening transitively."""
        old_lo, old_hi = frames[name]
        new_lo, new_hi = max(old_lo, lo), min(old_hi, hi)
        if new_lo > new_hi:
            raise InfeasibleScheduleError(
                f"FDS frame of {name!r} became empty ({new_lo} > {new_hi})"
            )
        if (new_lo, new_hi) == (old_lo, old_hi):
            return
        frames[name] = (new_lo, new_hi)
        latency = timing.latency(dfg.node(name).kind)
        for succ in dfg.successors(name):
            shrink(succ, new_lo + latency, cs)
        for pred in dfg.predecessors(name):
            pred_latency = timing.latency(dfg.node(pred).kind)
            shrink(pred, 1, new_hi - pred_latency)

    while unfixed:
        dg = _distribution(dfg, timing, frames, cs)
        best: Tuple[float, int, str, int] = (float("inf"), 0, "", 0)
        for name in sorted(unfixed, key=lambda n: order_index[n]):
            node = dfg.node(name)
            lo, hi = frames[name]
            latency = timing.latency(node.kind)
            before = _probabilities(lo, hi, latency, cs)
            for step in range(lo, hi + 1):
                after = _probabilities(step, step, latency, cs)
                total = _force(dg[node.kind], before, after)
                # Implicit forces: one-level predecessor/successor frame cuts.
                for succ in dfg.successors(name):
                    s_lo, s_hi = frames[succ]
                    n_lo = max(s_lo, step + latency)
                    if (n_lo, s_hi) != (s_lo, s_hi) and n_lo <= s_hi:
                        s_node = dfg.node(succ)
                        s_lat = timing.latency(s_node.kind)
                        total += _force(
                            dg[s_node.kind],
                            _probabilities(s_lo, s_hi, s_lat, cs),
                            _probabilities(n_lo, s_hi, s_lat, cs),
                        )
                for pred in dfg.predecessors(name):
                    p_lo, p_hi = frames[pred]
                    p_node = dfg.node(pred)
                    p_lat = timing.latency(p_node.kind)
                    n_hi = min(p_hi, step - p_lat)
                    if (p_lo, n_hi) != (p_lo, p_hi) and p_lo <= n_hi:
                        total += _force(
                            dg[p_node.kind],
                            _probabilities(p_lo, p_hi, p_lat, cs),
                            _probabilities(p_lo, n_hi, p_lat, cs),
                        )
                key = (total, order_index[name], name, step)
                if key < best:
                    best = key
        _total, _idx, chosen, step = best
        shrink(chosen, step, step)
        unfixed.discard(chosen)

    starts = {name: frames[name][0] for name in frames}
    return Schedule(dfg=dfg, timing=timing, cs=cs, starts=starts)
