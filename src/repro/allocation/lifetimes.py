"""Value life-span analysis (§4.1 f_REG, §5.8).

A value produced by operation ``p`` is *born* when ``p`` finishes (end of
step ``end(p)``) and must stay registered until its last consumer has read
it.  Conventions used throughout the library:

* a consumer starting at step ``s`` reads its inputs at the *beginning* of
  ``s``, so a value with last consumer ``s`` occupies a register over the
  half-open step interval ``[end(p), s)`` — if ``s == end(p)`` the transfer
  is combinational (chaining) and needs no register;
* a *non-pipelined multi-cycle* consumer holds its operands on the FU
  input for its whole duration, so such values stay registered through
  the consumer's **end** step (pipelined units latch at the start);
* values feeding primary outputs stay alive through ``cs + 1`` (they must
  be observable after the last step);
* primary inputs and constants live in input/constant resources, not in
  datapath registers, unless ``count_inputs`` is set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.schedule.types import Schedule


@dataclass(frozen=True)
class Lifetime:
    """Register occupancy of one value.

    ``birth`` is the step after which the value exists (producer's end
    step); ``death`` is the step at whose beginning it is last read.  The
    value needs a register iff ``death > birth``.
    """

    value: str
    birth: int
    death: int

    @property
    def needs_register(self) -> bool:
        return self.death > self.birth

    def overlaps(self, other: "Lifetime") -> bool:
        """Whether two lifetimes cannot share a register.

        Degenerate lifetimes (``death == birth``) occupy no storage and
        never conflict.
        """
        if not self.needs_register or not other.needs_register:
            return False
        return self.birth < other.death and other.birth < self.death


def value_lifetimes(
    schedule: Schedule,
    count_inputs: bool = False,
) -> Dict[str, Lifetime]:
    """Lifetime of every value (node output, and optionally primary input).

    Keys are signal names as produced by
    :meth:`repro.dfg.graph.Port.signal_name` (``op:<node>`` / ``in:<name>``).
    """
    dfg = schedule.dfg
    lifetimes: Dict[str, Lifetime] = {}

    last_use: Dict[str, int] = {}
    for node in dfg:
        latency = schedule.timing.latency(node.kind)
        if latency > 1 and node.kind not in schedule.pipelined_kinds:
            consume_until = schedule.end(node.name)
        else:
            consume_until = schedule.start(node.name)
        for port in node.operands:
            if port.is_const:
                continue
            key = port.signal_name()
            last_use[key] = max(last_use.get(key, 0), consume_until)
    for out_name, port in dfg.outputs.items():
        if port.is_const:
            continue
        key = port.signal_name()
        last_use[key] = max(last_use.get(key, 0), schedule.cs + 1)

    for node in dfg:
        key = f"op:{node.name}"
        birth = schedule.end(node.name)
        death = last_use.get(key, birth)
        lifetimes[key] = Lifetime(value=key, birth=birth, death=death)

    if count_inputs:
        for name in dfg.inputs:
            key = f"in:{name}"
            death = last_use.get(key, 0)
            lifetimes[key] = Lifetime(value=key, birth=0, death=death)
    return lifetimes
