"""Register allocation via the left-edge / activity-selection rule (§5.8).

The paper uses "an expanded version of the activity selection algorithm …
the signal with the smallest death time is selected and if it is compatible
(no time conflict) with other signals in the register it will be assigned
to that register".  That greedy is exactly the classic left-edge algorithm
(paper ref. [19], REAL) and yields the minimum register count, equal to the
maximum number of simultaneously live values.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from sys import maxsize
from typing import Dict, Iterable, List, Tuple

from repro.allocation.lifetimes import Lifetime


@dataclass
class RegisterAllocation:
    """Result of register allocation.

    ``assignment`` maps each registered value to a register index
    ``0 … count-1``; values that never need storage are absent.
    """

    count: int
    assignment: Dict[str, int] = field(default_factory=dict)
    tracks: List[List[Lifetime]] = field(default_factory=list)

    def register_of(self, value: str) -> int:
        """Register index holding ``value`` (KeyError if unregistered)."""
        return self.assignment[value]

    def values_in(self, register: int) -> Tuple[str, ...]:
        """Values time-multiplexed onto one register."""
        return tuple(life.value for life in self.tracks[register])


def left_edge_allocate(lifetimes: Iterable[Lifetime]) -> RegisterAllocation:
    """Left-edge register allocation.

    Lifetimes are sorted by their left edge (birth) and first-fit packed;
    for interval conflicts this greedy is optimal, i.e. it always meets
    the peak-liveness lower bound.  (The paper's per-register activity
    selection picks signals by smallest death time; both greedies realise
    the same optimal count on intervals.)  Lifetimes that never need a
    register (death == birth) are skipped; ties break by death then name
    so the result is deterministic.
    """
    pending = sorted(
        (life for life in lifetimes if life.needs_register),
        key=lambda life: (life.birth, life.death, life.value),
    )
    tracks: List[List[Lifetime]] = []
    assignment: Dict[str, int] = {}
    # Births arrive in ascending order, so a track's members are disjoint
    # and birth-sorted and only its last member (the one with the maximum
    # death) can still conflict with a new lifetime: first-fit is one
    # integer comparison per track instead of a full member scan.
    last_death: List[int] = []
    for life in pending:
        for index, death in enumerate(last_death):
            if death <= life.birth:
                tracks[index].append(life)
                last_death[index] = life.death
                assignment[life.value] = index
                break
        else:
            tracks.append([life])
            last_death.append(life.death)
            assignment[life.value] = len(tracks) - 1
    return RegisterAllocation(
        count=len(tracks), assignment=assignment, tracks=tracks
    )


def max_simultaneously_live(lifetimes: Iterable[Lifetime]) -> int:
    """Lower bound on register count: peak number of overlapping lifetimes.

    The left-edge allocation always meets this bound (used as a test
    invariant).
    """
    events: List[Tuple[int, int]] = []
    for life in lifetimes:
        if life.needs_register:
            events.append((life.birth, 1))
            events.append((life.death, -1))
    events.sort()
    live = peak = 0
    for _time, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


class IncrementalRegisterEstimator:
    """Greedy incremental register-need estimate used by f_REG (§4.1).

    During MFSA, every placement decision asks "how many *new* registers
    would this choice add, given the signals stored so far?".  The
    estimator keeps the same greedy tracks as the final left-edge pass and
    answers in O(tracks · signals-per-track).
    """

    def __init__(self) -> None:
        self._tracks: List[List[Lifetime]] = []
        self._known: Dict[str, Lifetime] = {}
        # Per-track interval index: (births, deaths), both sorted by birth
        # (disjointness makes that order also death order).  Backs the
        # O(log) availability probes of the vector kernel's batched f_REG.
        self._index: List[Tuple[List[int], List[int]]] = []

    @property
    def count(self) -> int:
        """Registers allocated so far."""
        return len(self._tracks)

    def is_known(self, value: str) -> bool:
        """Whether a signal already has committed storage."""
        return value in self._known

    def track_thresholds(self, birth: int) -> List[int]:
        """Per-track death ceilings for a candidate lifetime born at ``birth``.

        A committed member conflicts with the candidate iff its death
        exceeds ``birth`` and its birth precedes the candidate's death;
        members of one track are pairwise disjoint, so the first member
        dying after ``birth`` carries the smallest qualifying birth.  The
        candidate therefore fits track ``t`` iff its death is at most the
        returned ``τ_t`` (``sys.maxsize`` when nothing in the track can
        conflict).  This turns :meth:`cost_of` availability into one
        integer comparison per (track, candidate-step) — the vector
        kernel broadcasts it over whole move frames.
        """
        out: List[int] = []
        for births, deaths in self._index:
            idx = bisect_right(deaths, birth)
            out.append(births[idx] if idx < len(births) else maxsize)
        return out

    def cost_of(self, lifetimes: Iterable[Lifetime]) -> int:
        """New registers the given lifetimes would require (no commit).

        Tentative placements are tracked per-track instead of deep-copying
        every track up front; the first-fit order (existing tracks, then
        tentative new ones) matches the copying formulation exactly.
        """
        added = 0
        extras: Dict[int, List[Lifetime]] = {}
        new_tracks: List[List[Lifetime]] = []
        for life in lifetimes:
            if not life.needs_register or life.value in self._known:
                continue
            overlaps = life.overlaps
            for index, track in enumerate(self._tracks):
                if any(overlaps(other) for other in track):
                    continue
                tentative = extras.get(index)
                if tentative is not None and any(
                    overlaps(other) for other in tentative
                ):
                    continue
                if tentative is None:
                    extras[index] = [life]
                else:
                    tentative.append(life)
                break
            else:
                for track in new_tracks:
                    if not any(overlaps(other) for other in track):
                        track.append(life)
                        break
                else:
                    new_tracks.append([life])
                    added += 1
        return added

    def commit(self, lifetimes: Iterable[Lifetime]) -> None:
        """Permanently record the lifetimes.

        First-fit through the sorted interval index: the lifetime fits a
        track iff its death stays at or below the track's threshold (see
        :meth:`track_thresholds`) — O(log members) per track instead of
        an overlap scan of every member.
        """
        for life in lifetimes:
            if not life.needs_register or life.value in self._known:
                continue
            self._known[life.value] = life
            birth, death = life.birth, life.death
            for index, (births, deaths) in enumerate(self._index):
                pos = bisect_right(deaths, birth)
                if pos == len(births) or death <= births[pos]:
                    self._tracks[index].append(life)
                    births.insert(pos, birth)
                    deaths.insert(pos, death)
                    break
            else:
                self._tracks.append([life])
                self._index.append(([birth], [death]))
