"""Register allocation via the left-edge / activity-selection rule (§5.8).

The paper uses "an expanded version of the activity selection algorithm …
the signal with the smallest death time is selected and if it is compatible
(no time conflict) with other signals in the register it will be assigned
to that register".  That greedy is exactly the classic left-edge algorithm
(paper ref. [19], REAL) and yields the minimum register count, equal to the
maximum number of simultaneously live values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.allocation.lifetimes import Lifetime


@dataclass
class RegisterAllocation:
    """Result of register allocation.

    ``assignment`` maps each registered value to a register index
    ``0 … count-1``; values that never need storage are absent.
    """

    count: int
    assignment: Dict[str, int] = field(default_factory=dict)
    tracks: List[List[Lifetime]] = field(default_factory=list)

    def register_of(self, value: str) -> int:
        """Register index holding ``value`` (KeyError if unregistered)."""
        return self.assignment[value]

    def values_in(self, register: int) -> Tuple[str, ...]:
        """Values time-multiplexed onto one register."""
        return tuple(life.value for life in self.tracks[register])


def left_edge_allocate(lifetimes: Iterable[Lifetime]) -> RegisterAllocation:
    """Left-edge register allocation.

    Lifetimes are sorted by their left edge (birth) and first-fit packed;
    for interval conflicts this greedy is optimal, i.e. it always meets
    the peak-liveness lower bound.  (The paper's per-register activity
    selection picks signals by smallest death time; both greedies realise
    the same optimal count on intervals.)  Lifetimes that never need a
    register (death == birth) are skipped; ties break by death then name
    so the result is deterministic.
    """
    pending = sorted(
        (life for life in lifetimes if life.needs_register),
        key=lambda life: (life.birth, life.death, life.value),
    )
    tracks: List[List[Lifetime]] = []
    assignment: Dict[str, int] = {}
    for life in pending:
        for index, track in enumerate(tracks):
            if all(not life.overlaps(other) for other in track):
                track.append(life)
                assignment[life.value] = index
                break
        else:
            tracks.append([life])
            assignment[life.value] = len(tracks) - 1
    return RegisterAllocation(
        count=len(tracks), assignment=assignment, tracks=tracks
    )


def max_simultaneously_live(lifetimes: Iterable[Lifetime]) -> int:
    """Lower bound on register count: peak number of overlapping lifetimes.

    The left-edge allocation always meets this bound (used as a test
    invariant).
    """
    events: List[Tuple[int, int]] = []
    for life in lifetimes:
        if life.needs_register:
            events.append((life.birth, 1))
            events.append((life.death, -1))
    events.sort()
    live = peak = 0
    for _time, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


class IncrementalRegisterEstimator:
    """Greedy incremental register-need estimate used by f_REG (§4.1).

    During MFSA, every placement decision asks "how many *new* registers
    would this choice add, given the signals stored so far?".  The
    estimator keeps the same greedy tracks as the final left-edge pass and
    answers in O(tracks · signals-per-track).
    """

    def __init__(self) -> None:
        self._tracks: List[List[Lifetime]] = []
        self._known: Dict[str, Lifetime] = {}

    @property
    def count(self) -> int:
        """Registers allocated so far."""
        return len(self._tracks)

    def cost_of(self, lifetimes: Iterable[Lifetime]) -> int:
        """New registers the given lifetimes would require (no commit).

        Tentative placements are tracked per-track instead of deep-copying
        every track up front; the first-fit order (existing tracks, then
        tentative new ones) matches the copying formulation exactly.
        """
        added = 0
        extras: Dict[int, List[Lifetime]] = {}
        new_tracks: List[List[Lifetime]] = []
        for life in lifetimes:
            if not life.needs_register or life.value in self._known:
                continue
            overlaps = life.overlaps
            for index, track in enumerate(self._tracks):
                if any(overlaps(other) for other in track):
                    continue
                tentative = extras.get(index)
                if tentative is not None and any(
                    overlaps(other) for other in tentative
                ):
                    continue
                if tentative is None:
                    extras[index] = [life]
                else:
                    tentative.append(life)
                break
            else:
                for track in new_tracks:
                    if not any(overlaps(other) for other in track):
                        track.append(life)
                        break
                else:
                    new_tracks.append([life])
                    added += 1
        return added

    def commit(self, lifetimes: Iterable[Lifetime]) -> None:
        """Permanently record the lifetimes."""
        for life in lifetimes:
            if not life.needs_register or life.value in self._known:
                continue
            self._known[life.value] = life
            for track in self._tracks:
                if all(not life.overlaps(other) for other in track):
                    track.append(life)
                    break
            else:
                self._tracks.append([life])
