"""Multiplexer input-list optimisation (§5.6).

Each ALU has two input multiplexers, ``MUX¹`` and ``MUX²``, feeding its
left and right operand ports.  Given the operations bound to one ALU, the
task is to build two signal lists ``L1``/``L2`` with ``|L1| + |L2|``
minimum: non-commutative operations fix their operand sides; each
commutative operation may be flipped.

The paper uses a constructive pass (non-commutative first, then the two
orientations of each commutative operation); we add a cheap fixpoint
improvement sweep on top, which never hurts and frequently saves an input.
Interconnect sharing (§5.7) falls out of the signal-name keying: operands
carrying the same signal occupy a single mux input / wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class MuxOperand:
    """Operand pair of one operation bound to an ALU."""

    op: str
    left: str
    right: Optional[str]
    commutative: bool


@dataclass
class MuxAssignment:
    """Optimised mux configuration of one ALU.

    ``swapped`` records which commutative operations feed their textual
    left operand into port 2 (needed by RTL generation and simulation).
    """

    l1: Tuple[str, ...]
    l2: Tuple[str, ...]
    swapped: Dict[str, bool]

    @property
    def total_inputs(self) -> int:
        """``|L1| + |L2|`` — the optimised size."""
        return len(self.l1) + len(self.l2)

    def port_of(self, op: str, textual_left: bool) -> int:
        """Physical port (1 or 2) an operand reaches after swapping."""
        flipped = self.swapped.get(op, False)
        if textual_left:
            return 2 if flipped else 1
        return 1 if flipped else 2


def _build_lists(
    fixed_l1: Set[str],
    fixed_l2: Set[str],
    commutatives: Sequence[MuxOperand],
    swapped: Dict[str, bool],
) -> Tuple[Set[str], Set[str]]:
    """L1/L2 contents for the given orientations."""
    l1, l2 = set(fixed_l1), set(fixed_l2)
    for item in commutatives:
        if swapped[item.op]:
            l1.add(item.right)
            l2.add(item.left)
        else:
            l1.add(item.left)
            l2.add(item.right)
    return l1, l2


def optimize_mux_inputs(operands: Sequence[MuxOperand]) -> MuxAssignment:
    """Build minimal L1/L2 lists for one ALU's operations.

    Deterministic: operations are processed in the order given, and ties
    prefer the unswapped orientation.
    """
    fixed_l1: Set[str] = set()
    fixed_l2: Set[str] = set()
    swapped: Dict[str, bool] = {}
    commutatives: List[MuxOperand] = []

    for item in operands:
        if item.commutative and item.right is not None:
            commutatives.append(item)
        else:
            fixed_l1.add(item.left)
            if item.right is not None:
                fixed_l2.add(item.right)
            swapped[item.op] = False

    # Constructive pass (§5.6): try both orientations greedily.
    l1, l2 = set(fixed_l1), set(fixed_l2)
    for item in commutatives:
        straight = (item.left not in l1) + (item.right not in l2)
        flipped = (item.right not in l1) + (item.left not in l2)
        swapped[item.op] = flipped < straight
        if swapped[item.op]:
            l1.add(item.right)
            l2.add(item.left)
        else:
            l1.add(item.left)
            l2.add(item.right)

    # Fixpoint improvement: re-orient while the total size shrinks.  Flip
    # trials keep reference counts of each side's signals instead of
    # rebuilding both sets from scratch — O(1) per trial, same decisions
    # (a signal is "in the list" iff its count is positive), hence the
    # same assignment.  Duplicate op ids share one ``swapped`` flag, which
    # the counting trial cannot express — such (malformed but accepted)
    # inputs keep the rebuild loop.
    unique_ops = len({item.op for item in commutatives}) == len(commutatives)
    if unique_ops:
        counts1: Dict[str, int] = {}
        counts2: Dict[str, int] = {}
        for signal in fixed_l1:
            counts1[signal] = counts1.get(signal, 0) + 1
        for signal in fixed_l2:
            counts2[signal] = counts2.get(signal, 0) + 1
        for item in commutatives:
            into1, into2 = (
                (item.right, item.left)
                if swapped[item.op]
                else (item.left, item.right)
            )
            counts1[into1] = counts1.get(into1, 0) + 1
            counts2[into2] = counts2.get(into2, 0) + 1

        get1, get2 = counts1.get, counts2.get
        for _sweep in range(len(commutatives) + 1):
            changed = False
            for item in commutatives:
                current = swapped[item.op]
                if current:
                    into1, into2 = item.right, item.left
                else:
                    into1, into2 = item.left, item.right
                # Flip trial as a size delta: drop into1/into2 from their
                # sides, add them to the opposite ones.
                delta = 0
                count = counts1[into1] - 1
                counts1[into1] = count
                if count == 0:
                    delta -= 1
                count = get1(into2, 0) + 1
                counts1[into2] = count
                if count == 1:
                    delta += 1
                count = counts2[into2] - 1
                counts2[into2] = count
                if count == 0:
                    delta -= 1
                count = get2(into1, 0) + 1
                counts2[into1] = count
                if count == 1:
                    delta += 1
                if delta < 0:
                    swapped[item.op] = not current
                    changed = True
                else:
                    counts1[into2] -= 1
                    counts1[into1] += 1
                    counts2[into1] -= 1
                    counts2[into2] += 1
            if not changed:
                break
    else:  # pragma: no cover - duplicate op ids
        for _sweep in range(len(commutatives) + 1):
            changed = False
            for item in commutatives:
                current = swapped[item.op]
                sizes = {}
                for orientation in (False, True):
                    swapped[item.op] = orientation
                    trial_l1, trial_l2 = _build_lists(
                        fixed_l1, fixed_l2, commutatives, swapped
                    )
                    sizes[orientation] = len(trial_l1) + len(trial_l2)
                best = (
                    current
                    if sizes[current] <= sizes[not current]
                    else not current
                )
                swapped[item.op] = best
                changed = changed or best != current
            if not changed:
                break

    l1, l2 = _build_lists(fixed_l1, fixed_l2, commutatives, swapped)
    return MuxAssignment(l1=tuple(sorted(l1)), l2=tuple(sorted(l2)), swapped=swapped)


def mux_cost_of(assignment: MuxAssignment, mux_costs) -> float:
    """Cost of the two input muxes under a :class:`MuxCostTable`."""
    return mux_costs.cost(len(assignment.l1)) + mux_costs.cost(len(assignment.l2))


# ---------------------------------------------------------------------------
# Process-wide memo over renaming-canonical operand lists.
#
# :func:`optimize_mux_inputs` is a pure function that touches signal names
# only through equality (set membership), so a bijective renaming of the
# signals yields an isomorphic run: identical orientations per operand and
# identical list *contents* up to the renaming.  Canonicalising names to
# first-occurrence indices therefore lets every isomorphic operand list —
# across ALU instances, schedulers and runs in this process — share one
# optimiser invocation.  The memo stores the canonical assignment (index
# sets plus the per-operand swap pattern) and reconstructs the real-name
# :class:`MuxAssignment` on a hit; results are byte-identical to a direct
# call.  Op ids must be distinct for the swap pattern to be positional —
# callers with duplicate ids fall through to the direct path.
# ---------------------------------------------------------------------------

_CANON_CACHE: Dict[tuple, Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[bool, ...]]] = {}
_CANON_CACHE_MAX = 1 << 16


def clear_mux_memo() -> None:
    """Drop the process-wide optimiser memo (tests / memory pressure)."""
    _CANON_CACHE.clear()


def _canonical_form(
    operands: Sequence[MuxOperand],
) -> Tuple[Optional[tuple], List[str]]:
    """Canonical key plus the index → signal-name decoder, or ``(None, [])``."""
    ids: Dict[str, int] = {}
    names: List[str] = []
    seen_ops: Set[str] = set()
    key = []
    for item in operands:
        if item.op in seen_ops:
            return None, []
        seen_ops.add(item.op)
        left = ids.get(item.left)
        if left is None:
            left = ids[item.left] = len(names)
            names.append(item.left)
        if item.right is None:
            right = None
        else:
            right = ids.get(item.right)
            if right is None:
                right = ids[item.right] = len(names)
                names.append(item.right)
        key.append((left, right, item.commutative))
    return tuple(key), names


def cached_mux_input_sizes(
    operands: Sequence[MuxOperand], perf=None
) -> Tuple[int, int]:
    """``(|L1|, |L2|)`` of the optimised assignment, via the memo.

    The cost-only variant of :func:`cached_optimize_mux_inputs`: a memo
    hit skips reconstructing the real-name assignment entirely (sizes are
    renaming-invariant).
    """
    key, names = _canonical_form(operands)
    if key is None:
        assignment = optimize_mux_inputs(operands)
        return len(assignment.l1), len(assignment.l2)
    hit = _CANON_CACHE.get(key)
    if hit is not None:
        if perf is not None:
            perf.incr("mux.canon_hits")
        return len(hit[0]), len(hit[1])
    if perf is not None:
        perf.incr("mux.canon_misses")
    assignment = optimize_mux_inputs(operands)
    if len(_CANON_CACHE) < _CANON_CACHE_MAX:
        ids = {name: i for i, name in enumerate(names)}
        _CANON_CACHE[key] = (
            tuple(sorted(ids[s] for s in assignment.l1)),
            tuple(sorted(ids[s] for s in assignment.l2)),
            tuple(assignment.swapped.get(item.op, False) for item in operands),
        )
    return len(assignment.l1), len(assignment.l2)


def _optimize_canonical(
    key: tuple,
) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[bool, ...]]:
    """:func:`optimize_mux_inputs` run directly on a canonical key.

    The key's ``(left, right, commutative)`` triples are a bijective
    renaming of the real operand signals, and the optimiser touches
    signals only through equality — so running it on the integer ids
    reproduces the exact orientations and list *contents* (as ids) of
    the real-name run, without ever materialising operand objects.
    Returns the memo-entry triple ``(sorted L1 ids, sorted L2 ids,
    per-operand swap pattern)``.  Keys come from :func:`_canonical_form`
    (or an incremental equivalent), which already rejects duplicate op
    ids, so the swap pattern is positional.
    """
    fixed1: List[int] = []
    fixed2: List[int] = []
    pairs: List[Tuple[int, int]] = []
    commutative_at: List[int] = []
    n = 0
    for position, (left, right, commutative) in enumerate(key):
        if left >= n:
            n = left + 1
        if right is not None and right >= n:
            n = right + 1
        if commutative and right is not None:
            commutative_at.append(position)
            pairs.append((left, right))
        else:
            fixed1.append(left)
            if right is not None:
                fixed2.append(right)

    # Constructive pass on membership bitmaps.
    in1 = bytearray(n)
    in2 = bytearray(n)
    for i in fixed1:
        in1[i] = 1
    for i in fixed2:
        in2[i] = 1
    flips: List[bool] = []
    for left, right in pairs:
        straight = (not in1[left]) + (not in2[right])
        flipped = (not in1[right]) + (not in2[left])
        flip = flipped < straight
        flips.append(flip)
        if flip:
            in1[right] = 1
            in2[left] = 1
        else:
            in1[left] = 1
            in2[right] = 1

    # Fixpoint sweeps on flat reference-count arrays (same trials and
    # tie-breaks as the dict-based loop in :func:`optimize_mux_inputs`).
    counts1 = [0] * n
    counts2 = [0] * n
    for i in set(fixed1):
        counts1[i] += 1
    for i in set(fixed2):
        counts2[i] += 1
    for (left, right), flip in zip(pairs, flips):
        if flip:
            counts1[right] += 1
            counts2[left] += 1
        else:
            counts1[left] += 1
            counts2[right] += 1
    for _sweep in range(len(pairs) + 1):
        changed = False
        for index, (left, right) in enumerate(pairs):
            if flips[index]:
                into1, into2 = right, left
            else:
                into1, into2 = left, right
            delta = 0
            count = counts1[into1] - 1
            counts1[into1] = count
            if count == 0:
                delta -= 1
            count = counts1[into2] + 1
            counts1[into2] = count
            if count == 1:
                delta += 1
            count = counts2[into2] - 1
            counts2[into2] = count
            if count == 0:
                delta -= 1
            count = counts2[into1] + 1
            counts2[into1] = count
            if count == 1:
                delta += 1
            if delta < 0:
                flips[index] = not flips[index]
                changed = True
            else:
                counts1[into2] -= 1
                counts1[into1] += 1
                counts2[into1] -= 1
                counts2[into2] += 1
        if not changed:
            break

    l1 = set(fixed1)
    l2 = set(fixed2)
    for (left, right), flip in zip(pairs, flips):
        if flip:
            l1.add(right)
            l2.add(left)
        else:
            l1.add(left)
            l2.add(right)
    pattern = [False] * len(key)
    for position, flip in zip(commutative_at, flips):
        pattern[position] = flip
    return tuple(sorted(l1)), tuple(sorted(l2)), tuple(pattern)


def cached_mux_sizes_for_key(key, perf=None):
    """Memo probe with a caller-built canonical key.

    For callers that maintain the canonical form *incrementally* (the
    MFSA allocation state extends one committed prefix per ALU instance
    by the candidate operand in O(1)) instead of re-deriving it with
    :func:`_canonical_form` on every probe.  The key MUST equal
    ``_canonical_form(operands)[0]`` — first-occurrence indices in
    operand order — so entries interoperate with the other cached
    entry points.  Misses run the optimiser on the key's integer
    triples directly; real operand names are never needed.
    """
    hit = _CANON_CACHE.get(key)
    if hit is not None:
        if perf is not None:
            perf.incr("mux.canon_hits")
        return len(hit[0]), len(hit[1])
    if perf is not None:
        perf.incr("mux.canon_misses")
    entry = _optimize_canonical(key)
    if len(_CANON_CACHE) < _CANON_CACHE_MAX:
        _CANON_CACHE[key] = entry
    return len(entry[0]), len(entry[1])


def cached_optimize_mux_inputs(
    operands: Sequence[MuxOperand], perf=None
) -> MuxAssignment:
    """Memoized :func:`optimize_mux_inputs` (identical results).

    ``perf`` (an optional :class:`repro.perf.PerfCounters`) receives
    ``mux.canon_hits`` / ``mux.canon_misses``.
    """
    key, names = _canonical_form(operands)
    if key is None:
        return optimize_mux_inputs(operands)
    hit = _CANON_CACHE.get(key)
    if hit is not None:
        if perf is not None:
            perf.incr("mux.canon_hits")
        canon_l1, canon_l2, pattern = hit
        return MuxAssignment(
            l1=tuple(sorted(names[i] for i in canon_l1)),
            l2=tuple(sorted(names[i] for i in canon_l2)),
            swapped={
                item.op: flag for item, flag in zip(operands, pattern)
            },
        )
    if perf is not None:
        perf.incr("mux.canon_misses")
    assignment = optimize_mux_inputs(operands)
    if len(_CANON_CACHE) < _CANON_CACHE_MAX:
        ids = {name: i for i, name in enumerate(names)}
        _CANON_CACHE[key] = (
            tuple(sorted(ids[s] for s in assignment.l1)),
            tuple(sorted(ids[s] for s in assignment.l2)),
            tuple(assignment.swapped.get(item.op, False) for item in operands),
        )
    return assignment
