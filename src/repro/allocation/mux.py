"""Multiplexer input-list optimisation (§5.6).

Each ALU has two input multiplexers, ``MUX¹`` and ``MUX²``, feeding its
left and right operand ports.  Given the operations bound to one ALU, the
task is to build two signal lists ``L1``/``L2`` with ``|L1| + |L2|``
minimum: non-commutative operations fix their operand sides; each
commutative operation may be flipped.

The paper uses a constructive pass (non-commutative first, then the two
orientations of each commutative operation); we add a cheap fixpoint
improvement sweep on top, which never hurts and frequently saves an input.
Interconnect sharing (§5.7) falls out of the signal-name keying: operands
carrying the same signal occupy a single mux input / wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class MuxOperand:
    """Operand pair of one operation bound to an ALU."""

    op: str
    left: str
    right: Optional[str]
    commutative: bool


@dataclass
class MuxAssignment:
    """Optimised mux configuration of one ALU.

    ``swapped`` records which commutative operations feed their textual
    left operand into port 2 (needed by RTL generation and simulation).
    """

    l1: Tuple[str, ...]
    l2: Tuple[str, ...]
    swapped: Dict[str, bool]

    @property
    def total_inputs(self) -> int:
        """``|L1| + |L2|`` — the optimised size."""
        return len(self.l1) + len(self.l2)

    def port_of(self, op: str, textual_left: bool) -> int:
        """Physical port (1 or 2) an operand reaches after swapping."""
        flipped = self.swapped.get(op, False)
        if textual_left:
            return 2 if flipped else 1
        return 1 if flipped else 2


def _build_lists(
    fixed_l1: Set[str],
    fixed_l2: Set[str],
    commutatives: Sequence[MuxOperand],
    swapped: Dict[str, bool],
) -> Tuple[Set[str], Set[str]]:
    """L1/L2 contents for the given orientations."""
    l1, l2 = set(fixed_l1), set(fixed_l2)
    for item in commutatives:
        if swapped[item.op]:
            l1.add(item.right)
            l2.add(item.left)
        else:
            l1.add(item.left)
            l2.add(item.right)
    return l1, l2


def optimize_mux_inputs(operands: Sequence[MuxOperand]) -> MuxAssignment:
    """Build minimal L1/L2 lists for one ALU's operations.

    Deterministic: operations are processed in the order given, and ties
    prefer the unswapped orientation.
    """
    fixed_l1: Set[str] = set()
    fixed_l2: Set[str] = set()
    swapped: Dict[str, bool] = {}
    commutatives: List[MuxOperand] = []

    for item in operands:
        if item.commutative and item.right is not None:
            commutatives.append(item)
        else:
            fixed_l1.add(item.left)
            if item.right is not None:
                fixed_l2.add(item.right)
            swapped[item.op] = False

    # Constructive pass (§5.6): try both orientations greedily.
    l1, l2 = set(fixed_l1), set(fixed_l2)
    for item in commutatives:
        straight = (item.left not in l1) + (item.right not in l2)
        flipped = (item.right not in l1) + (item.left not in l2)
        swapped[item.op] = flipped < straight
        if swapped[item.op]:
            l1.add(item.right)
            l2.add(item.left)
        else:
            l1.add(item.left)
            l2.add(item.right)

    # Fixpoint improvement: re-orient while the total size shrinks.
    for _sweep in range(len(commutatives) + 1):
        changed = False
        for item in commutatives:
            current = swapped[item.op]
            sizes = {}
            for orientation in (False, True):
                swapped[item.op] = orientation
                trial_l1, trial_l2 = _build_lists(
                    fixed_l1, fixed_l2, commutatives, swapped
                )
                sizes[orientation] = len(trial_l1) + len(trial_l2)
            best = current if sizes[current] <= sizes[not current] else not current
            swapped[item.op] = best
            changed = changed or best != current
        if not changed:
            break

    l1, l2 = _build_lists(fixed_l1, fixed_l2, commutatives, swapped)
    return MuxAssignment(l1=tuple(sorted(l1)), l2=tuple(sorted(l2)), swapped=swapped)


def mux_cost_of(assignment: MuxAssignment, mux_costs) -> float:
    """Cost of the two input muxes under a :class:`MuxCostTable`."""
    return mux_costs.cost(len(assignment.l1)) + mux_costs.cost(len(assignment.l2))
