"""Multiplexer input-list optimisation (§5.6).

Each ALU has two input multiplexers, ``MUX¹`` and ``MUX²``, feeding its
left and right operand ports.  Given the operations bound to one ALU, the
task is to build two signal lists ``L1``/``L2`` with ``|L1| + |L2|``
minimum: non-commutative operations fix their operand sides; each
commutative operation may be flipped.

The paper uses a constructive pass (non-commutative first, then the two
orientations of each commutative operation); we add a cheap fixpoint
improvement sweep on top, which never hurts and frequently saves an input.
Interconnect sharing (§5.7) falls out of the signal-name keying: operands
carrying the same signal occupy a single mux input / wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class MuxOperand:
    """Operand pair of one operation bound to an ALU."""

    op: str
    left: str
    right: Optional[str]
    commutative: bool


@dataclass
class MuxAssignment:
    """Optimised mux configuration of one ALU.

    ``swapped`` records which commutative operations feed their textual
    left operand into port 2 (needed by RTL generation and simulation).
    """

    l1: Tuple[str, ...]
    l2: Tuple[str, ...]
    swapped: Dict[str, bool]

    @property
    def total_inputs(self) -> int:
        """``|L1| + |L2|`` — the optimised size."""
        return len(self.l1) + len(self.l2)

    def port_of(self, op: str, textual_left: bool) -> int:
        """Physical port (1 or 2) an operand reaches after swapping."""
        flipped = self.swapped.get(op, False)
        if textual_left:
            return 2 if flipped else 1
        return 1 if flipped else 2


def _build_lists(
    fixed_l1: Set[str],
    fixed_l2: Set[str],
    commutatives: Sequence[MuxOperand],
    swapped: Dict[str, bool],
) -> Tuple[Set[str], Set[str]]:
    """L1/L2 contents for the given orientations."""
    l1, l2 = set(fixed_l1), set(fixed_l2)
    for item in commutatives:
        if swapped[item.op]:
            l1.add(item.right)
            l2.add(item.left)
        else:
            l1.add(item.left)
            l2.add(item.right)
    return l1, l2


def optimize_mux_inputs(operands: Sequence[MuxOperand]) -> MuxAssignment:
    """Build minimal L1/L2 lists for one ALU's operations.

    Deterministic: operations are processed in the order given, and ties
    prefer the unswapped orientation.
    """
    fixed_l1: Set[str] = set()
    fixed_l2: Set[str] = set()
    swapped: Dict[str, bool] = {}
    commutatives: List[MuxOperand] = []

    for item in operands:
        if item.commutative and item.right is not None:
            commutatives.append(item)
        else:
            fixed_l1.add(item.left)
            if item.right is not None:
                fixed_l2.add(item.right)
            swapped[item.op] = False

    # Constructive pass (§5.6): try both orientations greedily.
    l1, l2 = set(fixed_l1), set(fixed_l2)
    for item in commutatives:
        straight = (item.left not in l1) + (item.right not in l2)
        flipped = (item.right not in l1) + (item.left not in l2)
        swapped[item.op] = flipped < straight
        if swapped[item.op]:
            l1.add(item.right)
            l2.add(item.left)
        else:
            l1.add(item.left)
            l2.add(item.right)

    # Fixpoint improvement: re-orient while the total size shrinks.
    for _sweep in range(len(commutatives) + 1):
        changed = False
        for item in commutatives:
            current = swapped[item.op]
            sizes = {}
            for orientation in (False, True):
                swapped[item.op] = orientation
                trial_l1, trial_l2 = _build_lists(
                    fixed_l1, fixed_l2, commutatives, swapped
                )
                sizes[orientation] = len(trial_l1) + len(trial_l2)
            best = current if sizes[current] <= sizes[not current] else not current
            swapped[item.op] = best
            changed = changed or best != current
        if not changed:
            break

    l1, l2 = _build_lists(fixed_l1, fixed_l2, commutatives, swapped)
    return MuxAssignment(l1=tuple(sorted(l1)), l2=tuple(sorted(l2)), swapped=swapped)


def mux_cost_of(assignment: MuxAssignment, mux_costs) -> float:
    """Cost of the two input muxes under a :class:`MuxCostTable`."""
    return mux_costs.cost(len(assignment.l1)) + mux_costs.cost(len(assignment.l2))


# ---------------------------------------------------------------------------
# Process-wide memo over renaming-canonical operand lists.
#
# :func:`optimize_mux_inputs` is a pure function that touches signal names
# only through equality (set membership), so a bijective renaming of the
# signals yields an isomorphic run: identical orientations per operand and
# identical list *contents* up to the renaming.  Canonicalising names to
# first-occurrence indices therefore lets every isomorphic operand list —
# across ALU instances, schedulers and runs in this process — share one
# optimiser invocation.  The memo stores the canonical assignment (index
# sets plus the per-operand swap pattern) and reconstructs the real-name
# :class:`MuxAssignment` on a hit; results are byte-identical to a direct
# call.  Op ids must be distinct for the swap pattern to be positional —
# callers with duplicate ids fall through to the direct path.
# ---------------------------------------------------------------------------

_CANON_CACHE: Dict[tuple, Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[bool, ...]]] = {}
_CANON_CACHE_MAX = 1 << 16


def clear_mux_memo() -> None:
    """Drop the process-wide optimiser memo (tests / memory pressure)."""
    _CANON_CACHE.clear()


def _canonical_form(
    operands: Sequence[MuxOperand],
) -> Tuple[Optional[tuple], List[str]]:
    """Canonical key plus the index → signal-name decoder, or ``(None, [])``."""
    ids: Dict[str, int] = {}
    names: List[str] = []
    seen_ops: Set[str] = set()
    key = []
    for item in operands:
        if item.op in seen_ops:
            return None, []
        seen_ops.add(item.op)
        left = ids.get(item.left)
        if left is None:
            left = ids[item.left] = len(names)
            names.append(item.left)
        if item.right is None:
            right = None
        else:
            right = ids.get(item.right)
            if right is None:
                right = ids[item.right] = len(names)
                names.append(item.right)
        key.append((left, right, item.commutative))
    return tuple(key), names


def cached_mux_input_sizes(
    operands: Sequence[MuxOperand], perf=None
) -> Tuple[int, int]:
    """``(|L1|, |L2|)`` of the optimised assignment, via the memo.

    The cost-only variant of :func:`cached_optimize_mux_inputs`: a memo
    hit skips reconstructing the real-name assignment entirely (sizes are
    renaming-invariant).
    """
    key, names = _canonical_form(operands)
    if key is None:
        assignment = optimize_mux_inputs(operands)
        return len(assignment.l1), len(assignment.l2)
    hit = _CANON_CACHE.get(key)
    if hit is not None:
        if perf is not None:
            perf.incr("mux.canon_hits")
        return len(hit[0]), len(hit[1])
    if perf is not None:
        perf.incr("mux.canon_misses")
    assignment = optimize_mux_inputs(operands)
    if len(_CANON_CACHE) < _CANON_CACHE_MAX:
        ids = {name: i for i, name in enumerate(names)}
        _CANON_CACHE[key] = (
            tuple(sorted(ids[s] for s in assignment.l1)),
            tuple(sorted(ids[s] for s in assignment.l2)),
            tuple(assignment.swapped.get(item.op, False) for item in operands),
        )
    return len(assignment.l1), len(assignment.l2)


def cached_optimize_mux_inputs(
    operands: Sequence[MuxOperand], perf=None
) -> MuxAssignment:
    """Memoized :func:`optimize_mux_inputs` (identical results).

    ``perf`` (an optional :class:`repro.perf.PerfCounters`) receives
    ``mux.canon_hits`` / ``mux.canon_misses``.
    """
    key, names = _canonical_form(operands)
    if key is None:
        return optimize_mux_inputs(operands)
    hit = _CANON_CACHE.get(key)
    if hit is not None:
        if perf is not None:
            perf.incr("mux.canon_hits")
        canon_l1, canon_l2, pattern = hit
        return MuxAssignment(
            l1=tuple(sorted(names[i] for i in canon_l1)),
            l2=tuple(sorted(names[i] for i in canon_l2)),
            swapped={
                item.op: flag for item, flag in zip(operands, pattern)
            },
        )
    if perf is not None:
        perf.incr("mux.canon_misses")
    assignment = optimize_mux_inputs(operands)
    if len(_CANON_CACHE) < _CANON_CACHE_MAX:
        ids = {name: i for i, name in enumerate(names)}
        _CANON_CACHE[key] = (
            tuple(sorted(ids[s] for s in assignment.l1)),
            tuple(sorted(ids[s] for s in assignment.l2)),
            tuple(assignment.swapped.get(item.op, False) for item in operands),
        )
    return assignment
