"""The RTL-level datapath structure and its cost roll-up.

A :class:`Datapath` is what MFSA produces (and what MFS + binding can
produce for comparison): a set of ALU instances with bound operations and
optimised input multiplexers, a register file from left-edge allocation,
and the area roll-up matching the paper's Table-2 columns
(``Cost``, ``REG``, ``MUX``, ``MUXin``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import AllocationError
from repro.allocation.lifetimes import Lifetime, value_lifetimes
from repro.allocation.mux import (
    MuxAssignment,
    MuxOperand,
    cached_optimize_mux_inputs,
)
from repro.allocation.registers import RegisterAllocation, left_edge_allocate
from repro.library.cells import ALUCell, CellLibrary
from repro.schedule.types import Schedule


@dataclass
class ALUInstance:
    """One physical ALU in the datapath."""

    cell: ALUCell
    index: int
    ops: List[str] = field(default_factory=list)
    mux: Optional[MuxAssignment] = None

    @property
    def key(self) -> Tuple[str, int]:
        return (self.cell.name, self.index)

    def label(self) -> str:
        """Paper-style label, e.g. ``(+-)#1``."""
        return f"{self.cell.label()}#{self.index}"


@dataclass(frozen=True)
class CostBreakdown:
    """Area roll-up in µm² (Table-2 ``Cost`` column plus detail)."""

    alu: float
    registers: float
    mux: float

    @property
    def total(self) -> float:
        return self.alu + self.registers + self.mux


class Datapath:
    """Complete allocated datapath for one schedule."""

    def __init__(
        self,
        schedule: Schedule,
        library: CellLibrary,
        binding: Mapping[str, Tuple[str, int]],
        count_input_registers: bool = False,
    ) -> None:
        """Build the datapath implied by ``binding``.

        ``binding`` maps node → (cell name, 1-based instance index).  Mux
        assignments are optimised per instance (§5.6) and registers
        allocated by the left-edge rule (§5.8) during construction.
        """
        self.schedule = schedule
        self.library = library
        self.binding: Dict[str, Tuple[str, int]] = dict(binding)
        self._check_binding()

        self.instances: Dict[Tuple[str, int], ALUInstance] = {}
        for name, (cell_name, index) in self.binding.items():
            key = (cell_name, index)
            if key not in self.instances:
                self.instances[key] = ALUInstance(
                    cell=library.cell(cell_name), index=index
                )
            self.instances[key].ops.append(name)

        for instance in self.instances.values():
            instance.mux = self._optimize_instance_mux(instance)

        self.lifetimes: Dict[str, Lifetime] = value_lifetimes(
            schedule, count_inputs=count_input_registers
        )
        self.registers: RegisterAllocation = left_edge_allocate(
            self.lifetimes.values()
        )

    # ------------------------------------------------------------------
    def _check_binding(self) -> None:
        dfg = self.schedule.dfg
        for name in dfg.node_names():
            if name not in self.binding:
                raise AllocationError(f"node {name!r} is not bound to any ALU")
        for name, (cell_name, index) in self.binding.items():
            cell = self.library.cell(cell_name)
            kind = dfg.node(name).kind
            if not cell.can_execute(kind):
                raise AllocationError(
                    f"node {name!r} ({kind}) bound to incapable cell {cell_name!r}"
                )
            if index < 1:
                raise AllocationError(
                    f"instance index of {name!r} must be >= 1, got {index}"
                )

    def _optimize_instance_mux(self, instance: ALUInstance) -> MuxAssignment:
        dfg = self.schedule.dfg
        ops = self.schedule.timing.ops
        operands: List[MuxOperand] = []
        for name in instance.ops:
            node = dfg.node(name)
            spec = ops.spec(node.kind)
            signals = node.operand_names()
            operands.append(
                MuxOperand(
                    op=name,
                    left=signals[0],
                    right=signals[1] if len(signals) > 1 else None,
                    commutative=spec.commutative,
                )
            )
        return cached_optimize_mux_inputs(operands)

    # ------------------------------------------------------------------
    # Table-2 metrics
    # ------------------------------------------------------------------
    def alu_labels(self) -> List[str]:
        """Paper-style ALU list, e.g. ``['(+-)', '(+-)', '(&=)']``."""
        return [
            instance.cell.label()
            for instance in sorted(
                self.instances.values(), key=lambda i: (i.cell.name, i.index)
            )
        ]

    def register_count(self) -> int:
        """Table-2 ``REG``."""
        return self.registers.count

    def mux_count(self) -> int:
        """Table-2 ``MUX``: ALU input ports needing a real multiplexer."""
        count = 0
        for instance in self.instances.values():
            count += sum(
                1 for inputs in (instance.mux.l1, instance.mux.l2) if len(inputs) >= 2
            )
        return count

    def mux_inputs(self) -> int:
        """Table-2 ``MUXin``: total data inputs across real multiplexers."""
        total = 0
        for instance in self.instances.values():
            for inputs in (instance.mux.l1, instance.mux.l2):
                if len(inputs) >= 2:
                    total += len(inputs)
        return total

    def cost_breakdown(self) -> CostBreakdown:
        """Area roll-up (Table-2 ``Cost``)."""
        alu_area = sum(
            instance.cell.area for instance in self.instances.values()
        )
        register_area = self.registers.count * self.library.register_area
        mux_area = 0.0
        for instance in self.instances.values():
            mux_area += self.library.mux_costs.cost(len(instance.mux.l1))
            mux_area += self.library.mux_costs.cost(len(instance.mux.l2))
        return CostBreakdown(alu=alu_area, registers=register_area, mux=mux_area)

    def instance_of(self, node: str) -> ALUInstance:
        """The ALU instance executing ``node``."""
        return self.instances[self.binding[node]]

    def has_self_loop(self) -> bool:
        """Whether any ALU hosts two data-dependent operations (style-2
        violation check, §4.2)."""
        dfg = self.schedule.dfg
        for instance in self.instances.values():
            members = set(instance.ops)
            for name in instance.ops:
                if members & set(dfg.predecessors(name)):
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Datapath({len(self.instances)} ALUs, "
            f"{self.register_count()} regs, {self.mux_count()} muxes, "
            f"cost={self.cost_breakdown().total:.0f})"
        )
