"""Functional-unit binding for plain schedules.

MFS placements already imply a binding (the grid column ``x``); baseline
schedulers (list/FDS/exact) only produce start steps, so this module
packs their operations onto unit instances greedily — first fit in start
order, honouring multi-cycle occupancy and mutual exclusion — to make any
schedule buildable into a datapath.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.schedule.types import Schedule


def bind_functional_units(schedule: Schedule) -> Dict[str, Tuple[str, int]]:
    """Bind every node to ``(kind, instance-index)`` (1-based index).

    Deterministic: operations are bound in (start step, insertion order).
    The number of instances used per kind equals
    :meth:`Schedule.fu_usage` for interval-shaped occupancy.
    """
    dfg, timing = schedule.dfg, schedule.timing
    insertion = {name: i for i, name in enumerate(dfg.node_names())}
    order = sorted(
        dfg.node_names(), key=lambda n: (schedule.start(n), insertion[n])
    )
    # instances[kind] -> list of lists of (node, steps) already bound
    instances: Dict[str, List[List[str]]] = {}
    binding: Dict[str, Tuple[str, int]] = {}

    def steps_of(name: str) -> Tuple[int, ...]:
        node = dfg.node(name)
        start = schedule.start(name)
        occupancy = (
            1
            if node.kind in schedule.pipelined_kinds
            else timing.latency(node.kind)
        )
        raw = range(start, start + occupancy)
        if schedule.latency_l:
            return tuple(((s - 1) % schedule.latency_l) + 1 for s in raw)
        return tuple(raw)

    footprints: Dict[str, Tuple[int, ...]] = {}

    def conflicts(a: str, b: str) -> bool:
        if dfg.mutually_exclusive(a, b):
            return False
        return bool(set(footprints[a]) & set(footprints[b]))

    for name in order:
        kind = dfg.node(name).kind
        footprints[name] = steps_of(name)
        units = instances.setdefault(kind, [])
        for index, unit in enumerate(units):
            if all(not conflicts(name, other) for other in unit):
                unit.append(name)
                binding[name] = (kind, index + 1)
                break
        else:
            units.append([name])
            binding[name] = (kind, len(units))
    return binding
