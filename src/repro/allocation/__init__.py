"""Datapath allocation substrate: lifetimes, registers, muxes, binding.

* :mod:`repro.allocation.lifetimes` — value life-span analysis over a
  schedule (chaining-aware);
* :mod:`repro.allocation.registers` — left-edge / activity-selection
  register allocation (§5.8, paper ref. [19]);
* :mod:`repro.allocation.mux` — multiplexer input-list minimisation with
  commutative operand swapping (§5.6);
* :mod:`repro.allocation.interconnect` — source-line sharing (§5.7);
* :mod:`repro.allocation.binding` — FU binding for plain MFS schedules;
* :mod:`repro.allocation.datapath` — the RTL-level datapath structure and
  its cost roll-up.
"""

from repro.allocation.lifetimes import Lifetime, value_lifetimes
from repro.allocation.registers import RegisterAllocation, left_edge_allocate
from repro.allocation.mux import MuxAssignment, optimize_mux_inputs
from repro.allocation.binding import bind_functional_units
from repro.allocation.datapath import ALUInstance, Datapath, CostBreakdown
from repro.allocation.buses import (
    BusAllocation,
    allocate_buses,
    compare_interconnect_styles,
)
from repro.allocation.verify import verify_datapath

__all__ = [
    "BusAllocation",
    "allocate_buses",
    "compare_interconnect_styles",
    "verify_datapath",
    "Lifetime",
    "value_lifetimes",
    "RegisterAllocation",
    "left_edge_allocate",
    "MuxAssignment",
    "optimize_mux_inputs",
    "bind_functional_units",
    "ALUInstance",
    "Datapath",
    "CostBreakdown",
]
