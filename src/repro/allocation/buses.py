"""Bus-based interconnect (§4.1's "multiplexers (or buses)").

The paper's datapath style feeds each ALU through two multiplexers; the
parenthetical alternative routes operands over shared **buses** instead:
every transfer in a control step is assigned to a bus, transfers in the
same step need distinct buses, and each bus costs its drivers (one
tri-state driver per distinct source) plus a fixed spine.

This module converts an allocated datapath to the bus style:

* enumerate the operand transfers per control step,
* colour simultaneous transfers onto a minimal number of buses
  (left-edge over steps — transfers are unit-time, so greedy per-step
  packing is optimal),
* cost the result and compare against the mux style, reproducing the
  classic crossover: mux interconnect wins for small designs, buses win
  once many sources fan into many sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.allocation.datapath import Datapath

#: Synthetic costs consistent with :mod:`repro.library.ncr` (µm²).
BUS_SPINE_AREA = 900.0
BUS_DRIVER_AREA = 240.0
BUS_RECEIVER_AREA = 60.0


@dataclass(frozen=True)
class Transfer:
    """One operand delivery: ``source`` signal into ``(instance, port)``
    at control step ``step``."""

    step: int
    source: str
    sink: Tuple[str, int]
    port: int
    op: str


@dataclass
class Bus:
    """One shared bus: its transfers, drivers and receivers."""

    index: int
    transfers: List[Transfer] = field(default_factory=list)

    def sources(self) -> Tuple[str, ...]:
        """Distinct signals driven onto this bus (each needs a driver)."""
        return tuple(sorted({t.source for t in self.transfers}))

    def sinks(self) -> Tuple[Tuple[str, int, int], ...]:
        """Distinct (instance, index, port) receivers."""
        return tuple(
            sorted({(t.sink[0], t.sink[1], t.port) for t in self.transfers})
        )

    def area(self) -> float:
        return (
            BUS_SPINE_AREA
            + BUS_DRIVER_AREA * len(self.sources())
            + BUS_RECEIVER_AREA * len(self.sinks())
        )


@dataclass
class BusAllocation:
    """Result of bus-style interconnect allocation."""

    buses: List[Bus]
    transfers: List[Transfer]

    @property
    def bus_count(self) -> int:
        return len(self.buses)

    def area(self) -> float:
        """Total interconnect area of the bus style."""
        return sum(bus.area() for bus in self.buses)

    def peak_parallel_transfers(self) -> int:
        """Lower bound on the bus count (met by construction)."""
        per_step: Dict[int, int] = {}
        for transfer in self.transfers:
            per_step[transfer.step] = per_step.get(transfer.step, 0) + 1
        return max(per_step.values(), default=0)


def enumerate_transfers(datapath: Datapath) -> List[Transfer]:
    """All operand deliveries of the schedule, one per operand read.

    Constants are excluded (they are hardwired to mux/bus inputs at no
    transfer cost in either style).
    """
    dfg = datapath.schedule.dfg
    transfers: List[Transfer] = []
    for name in dfg.node_names():
        node = dfg.node(name)
        step = datapath.schedule.start(name)
        key = datapath.binding[name]
        instance = datapath.instances[key]
        signals = node.operand_names()
        for position, signal in enumerate(signals):
            if signal.startswith("#"):
                continue
            port = (
                1
                if len(signals) == 1
                else instance.mux.port_of(name, textual_left=(position == 0))
            )
            transfers.append(
                Transfer(
                    step=step, source=signal, sink=key, port=port, op=name
                )
            )
    return transfers


def allocate_buses(datapath: Datapath) -> BusAllocation:
    """Pack transfers onto a minimal set of buses.

    Transfers are unit-time, so the minimum bus count equals the peak
    number of simultaneous transfers; the greedy packs deterministically
    and prefers keeping a *source* on the bus that already drives it
    (fewer drivers), then the lowest bus index.
    """
    transfers = enumerate_transfers(datapath)
    buses: List[Bus] = []
    busy: Dict[Tuple[int, int], bool] = {}  # (bus, step) occupied

    order = sorted(
        transfers, key=lambda t: (t.step, t.source, t.sink, t.port)
    )
    for transfer in order:
        chosen: Optional[Bus] = None
        # Pass 1: a free bus already driven by this source.
        for bus in buses:
            if busy.get((bus.index, transfer.step)):
                continue
            if transfer.source in bus.sources():
                chosen = bus
                break
        # Pass 2: any free bus.
        if chosen is None:
            for bus in buses:
                if not busy.get((bus.index, transfer.step)):
                    chosen = bus
                    break
        if chosen is None:
            chosen = Bus(index=len(buses))
            buses.append(chosen)
        chosen.transfers.append(transfer)
        busy[(chosen.index, transfer.step)] = True
    return BusAllocation(buses=buses, transfers=transfers)


@dataclass(frozen=True)
class InterconnectComparison:
    """Mux-style vs bus-style interconnect cost for one datapath."""

    mux_area: float
    bus_area: float
    bus_count: int
    mux_count: int

    @property
    def winner(self) -> str:
        return "mux" if self.mux_area <= self.bus_area else "bus"


def compare_interconnect_styles(datapath: Datapath) -> InterconnectComparison:
    """Cost the same datapath under both interconnect styles."""
    allocation = allocate_buses(datapath)
    mux_area = datapath.cost_breakdown().mux
    return InterconnectComparison(
        mux_area=mux_area,
        bus_area=allocation.area(),
        bus_count=allocation.bus_count,
        mux_count=datapath.mux_count(),
    )
