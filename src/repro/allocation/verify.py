"""Static datapath verification (no simulation needed).

:func:`verify_datapath` checks every structural invariant an allocated
design must satisfy, returning a list of human-readable violations
(empty = clean).  The cycle-accurate simulators catch these dynamically;
this verifier localises problems without stimulus and is cheap enough to
run on every synthesis result.

Checks:

1. every operation is bound to a capable ALU instance;
2. no two operations overlap in time on one instance (unless mutually
   exclusive);
3. every operand signal appears on the mux port that feeds it;
4. register sharing is conflict-free (no overlapping lifetimes in one
   register) and every stored value has a register;
5. style-2 designs have no ALU self-loop (optional, ``expect_style2``);
6. mux select tables are consistent (derivable without conflicts).
"""

from __future__ import annotations

from typing import List

from repro.errors import RTLError
from repro.allocation.datapath import Datapath


def verify_datapath(
    datapath: Datapath, expect_style2: bool = False
) -> List[str]:
    """Return all structural violations of ``datapath`` (empty = clean)."""
    violations: List[str] = []
    schedule = datapath.schedule
    dfg = schedule.dfg
    timing = schedule.timing

    # 1. binding capability -------------------------------------------------
    for name in dfg.node_names():
        key = datapath.binding.get(name)
        if key is None:
            violations.append(f"operation {name!r} is unbound")
            continue
        instance = datapath.instances.get(key)
        if instance is None:
            violations.append(f"operation {name!r} bound to ghost ALU {key}")
            continue
        if not instance.cell.can_execute(dfg.node(name).kind):
            violations.append(
                f"operation {name!r} ({dfg.node(name).kind}) on incapable "
                f"ALU {instance.label()}"
            )

    # 2. temporal exclusivity per instance ----------------------------------
    for key, instance in datapath.instances.items():
        occupancy = {}
        for name in instance.ops:
            kind = dfg.node(name).kind
            span = (
                1
                if kind in schedule.pipelined_kinds
                else timing.latency(kind)
            )
            for step in range(
                schedule.start(name), schedule.start(name) + span
            ):
                folded = step
                if schedule.latency_l:
                    folded = ((step - 1) % schedule.latency_l) + 1
                other = occupancy.get(folded)
                if other is not None and not dfg.mutually_exclusive(
                    name, other
                ):
                    violations.append(
                        f"{name!r} and {other!r} overlap on "
                        f"{instance.label()} at step {folded}"
                    )
                occupancy[folded] = name

    # 3. mux routing ---------------------------------------------------------
    for name in dfg.node_names():
        node = dfg.node(name)
        instance = datapath.instances[datapath.binding[name]]
        signals = node.operand_names()
        for position, signal in enumerate(signals):
            port = (
                1
                if len(signals) == 1
                else instance.mux.port_of(name, textual_left=(position == 0))
            )
            inputs = instance.mux.l1 if port == 1 else instance.mux.l2
            if signal not in inputs:
                violations.append(
                    f"signal {signal!r} of {name!r} missing from mux port "
                    f"{port} of {instance.label()}"
                )

    # 4. register sharing ----------------------------------------------------
    for index in range(datapath.registers.count):
        stored = [
            datapath.lifetimes[value]
            for value in datapath.registers.values_in(index)
        ]
        for i, first in enumerate(stored):
            for second in stored[i + 1:]:
                if first.overlaps(second):
                    violations.append(
                        f"r{index}: lifetimes of {first.value!r} and "
                        f"{second.value!r} overlap"
                    )
    for signal, life in datapath.lifetimes.items():
        if life.needs_register and signal not in datapath.registers.assignment:
            violations.append(f"stored value {signal!r} has no register")

    # 5. style-2 self-loops ----------------------------------------------------
    if expect_style2 and datapath.has_self_loop():
        violations.append("style-2 design contains an ALU self-loop")

    # 6. controller consistency -------------------------------------------------
    try:
        from repro.rtl.controller import build_controller

        build_controller(datapath)
    except (RTLError, KeyError, ValueError, IndexError) as error:
        violations.append(f"controller: {error}")

    return violations
