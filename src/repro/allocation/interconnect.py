"""Interconnect accounting and sharing (§5.7).

Data transfers between ALUs (and from registers/inputs to ALUs) ride on
connection lines.  Lines carrying the *same source signal* into the *same
multiplexer* are shared — which is exactly how the mux optimiser keys its
input lists — so this module's job is reporting: enumerate the physical
wires of a datapath, count how many transfers each one serves, and expose
the savings ratio the Liapunov f_MUX term benefits from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.allocation.datapath import Datapath


@dataclass(frozen=True)
class Wire:
    """One physical connection line of the datapath.

    ``source`` is a signal name (``op:<node>``, ``in:<name>`` or
    ``#<const>``); ``sink`` identifies an ALU instance and mux port.
    """

    source: str
    sink: Tuple[str, int]
    port: int


def wires(datapath: Datapath) -> List[Wire]:
    """All physical wires, one per (source, instance, port)."""
    result: List[Wire] = []
    for key, instance in sorted(datapath.instances.items()):
        for port, signals in ((1, instance.mux.l1), (2, instance.mux.l2)):
            for signal in signals:
                result.append(Wire(source=signal, sink=key, port=port))
    return result


def transfer_counts(datapath: Datapath) -> Dict[Wire, int]:
    """How many operand transfers each wire serves (sharing degree)."""
    counts: Dict[Wire, int] = {wire: 0 for wire in wires(datapath)}
    dfg = datapath.schedule.dfg
    for name, key in datapath.binding.items():
        node = dfg.node(name)
        instance = datapath.instances[key]
        signals = node.operand_names()
        for position, signal in enumerate(signals):
            port = instance.mux.port_of(name, textual_left=(position == 0))
            if len(signals) == 1:
                port = 1
            wire = Wire(source=signal, sink=key, port=port)
            counts[wire] = counts.get(wire, 0) + 1
    return counts


def sharing_ratio(datapath: Datapath) -> float:
    """Transfers per wire: 1.0 means no sharing, higher is better."""
    counts = transfer_counts(datapath)
    if not counts:
        return 1.0
    transfers = sum(counts.values())
    return transfers / len(counts)


def wire_count(datapath: Datapath) -> int:
    """Number of physical connection lines."""
    return len(wires(datapath))
