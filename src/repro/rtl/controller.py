"""Control-path design: the one-hot / counter FSM that sequences a
scheduled datapath (the paper's "Control path design" step, §1).

One state per control step.  Per state the controller provides

* the **select code** of every input multiplexer (which mux data input
  feeds the ALU port this step), and
* the **load enables** of the registers written at this step's end.

The tables are derived purely from the schedule, binding and mux
assignments — which also cross-checks them: two operations demanding
different selects from the same mux in the same state is a binding bug
and raises :class:`RTLError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import RTLError
from repro.allocation.datapath import Datapath


@dataclass
class ControlState:
    """All control signals of one FSM state (one control step)."""

    step: int
    mux_selects: Dict[Tuple[str, int, int], int] = field(default_factory=dict)
    register_loads: List[int] = field(default_factory=list)
    active_ops: List[str] = field(default_factory=list)
    alu_functions: Dict[Tuple[str, int], str] = field(default_factory=dict)


@dataclass
class Controller:
    """The full FSM: ``states[k]`` drives control step ``k+1``."""

    states: List[ControlState]

    @property
    def n_states(self) -> int:
        return len(self.states)

    def state(self, step: int) -> ControlState:
        """The state driving control step ``step`` (1-based)."""
        return self.states[step - 1]

    def control_bits(self) -> int:
        """Width of the control word (mux select bits + load enables)."""
        mux_keys = set()
        select_bits = 0
        registers = set()
        for state in self.states:
            for key in state.mux_selects:
                mux_keys.add(key)
            registers.update(state.register_loads)
        for key in mux_keys:
            widths = [
                state.mux_selects[key]
                for state in self.states
                if key in state.mux_selects
            ]
            span = max(widths) + 1
            select_bits += max(1, (span - 1).bit_length())
        return select_bits + len(registers)


def build_controller(datapath: Datapath) -> Controller:
    """Derive the FSM tables from a datapath."""
    schedule = datapath.schedule
    dfg, timing = schedule.dfg, schedule.timing
    states = [ControlState(step=step) for step in range(1, schedule.cs + 1)]

    # A non-pipelined multi-cycle operation needs its function and mux
    # selects held stable for its whole duration, so control signals are
    # asserted over start..end, not just at the start state.
    for name in dfg.node_names():
        node = dfg.node(name)
        start = schedule.start(name)
        real_end = schedule.end(name)
        pipelined = node.kind in schedule.pipelined_kinds
        # Pipelined units latch operands into stage registers at the start
        # state; non-pipelined multi-cycle units need control held to the
        # real end.
        end = start if pipelined else real_end
        states[start - 1].active_ops.append(name)

        key = datapath.binding[name]
        instance = datapath.instances[key]
        for step in range(start, end + 1):
            state = states[step - 1]
            previous_function = state.alu_functions.get(key)
            if previous_function is not None and previous_function != node.kind:
                if not all(
                    dfg.mutually_exclusive(name, other)
                    for other in state.active_ops
                    if other != name and datapath.binding[other] == key
                ):
                    raise RTLError(
                        f"ALU {instance.label()} asked to perform both "
                        f"{previous_function!r} and {node.kind!r} in "
                        f"step {step}"
                    )
            state.alu_functions[key] = node.kind

            signals = node.operand_names()
            for position, signal in enumerate(signals):
                if len(signals) == 1:
                    port = 1
                    inputs = instance.mux.l1
                else:
                    port = instance.mux.port_of(
                        name, textual_left=(position == 0)
                    )
                    inputs = instance.mux.l1 if port == 1 else instance.mux.l2
                if len(inputs) < 2:
                    continue  # single-source port: no mux, no select
                if signal not in inputs:
                    raise RTLError(
                        f"signal {signal!r} of {name!r} is not wired to "
                        f"port {port} of {instance.label()}"
                    )
                select = inputs.index(signal)
                mux_key = (key[0], key[1], port)
                previous = state.mux_selects.get(mux_key)
                if previous is not None and previous != select:
                    others = [
                        other
                        for other in state.active_ops
                        if other != name and datapath.binding[other] == key
                    ]
                    if not all(
                        dfg.mutually_exclusive(name, o) for o in others
                    ):
                        raise RTLError(
                            f"mux {mux_key} needs selects {previous} and "
                            f"{select} in step {step}"
                        )
                state.mux_selects[mux_key] = select

        signal = f"op:{name}"
        life = datapath.lifetimes.get(signal)
        if life is not None and life.needs_register:
            register = datapath.registers.assignment[signal]
            end_state = states[real_end - 1]
            if register not in end_state.register_loads:
                end_state.register_loads.append(register)

    return Controller(states=states)
