"""RTL back-end: netlist construction, FSM control path, Verilog emission.

The paper's flow ends in "an RTL structure" plus a control path (§1);
this package materialises both from a :class:`~repro.allocation.datapath.
Datapath`:

* :mod:`repro.rtl.netlist` — structural netlist (ALUs, registers, muxes,
  ports, nets);
* :mod:`repro.rtl.controller` — one-state-per-control-step FSM with mux
  select and register load-enable tables;
* :mod:`repro.rtl.verilog` — structural Verilog emission;
* :mod:`repro.rtl.cost` — area roll-up including a controller estimate.
"""

from repro.rtl.netlist import Netlist, build_netlist
from repro.rtl.controller import Controller, build_controller
from repro.rtl.verilog import emit_verilog
from repro.rtl.structural import emit_structural_verilog
from repro.rtl.testbench import emit_testbench
from repro.rtl.cost import total_area

__all__ = [
    "Netlist",
    "build_netlist",
    "Controller",
    "build_controller",
    "emit_verilog",
    "emit_structural_verilog",
    "emit_testbench",
    "total_area",
]
