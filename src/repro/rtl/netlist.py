"""Structural netlist of an allocated datapath.

Components are ALU instances, registers, input multiplexers, primary I/O
ports and constant drivers; nets connect one driver pin to any number of
sink pins.  Signals that never need storage (chained, §5.4) drive their
consumers straight from the producing ALU's output; stored signals drive
them from their left-edge register (the producing ALU additionally drives
the register's data input).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import RTLError
from repro.allocation.datapath import Datapath


@dataclass(frozen=True)
class Pin:
    """One connection point: ``(component, port)``."""

    component: str
    port: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.component}.{self.port}"


@dataclass
class NetlistComponent:
    """One hardware block of the netlist."""

    name: str
    kind: str  # "alu" | "reg" | "mux" | "input" | "output" | "const"
    params: Dict[str, object] = field(default_factory=dict)


@dataclass
class Net:
    """One driver pin fanned out to sink pins."""

    name: str
    driver: Pin
    sinks: List[Pin] = field(default_factory=list)


@dataclass
class Netlist:
    """Component + net container with integrity checking."""

    name: str
    components: Dict[str, NetlistComponent] = field(default_factory=dict)
    nets: Dict[str, Net] = field(default_factory=dict)

    def add_component(self, component: NetlistComponent) -> None:
        if component.name in self.components:
            raise RTLError(f"duplicate component {component.name!r}")
        self.components[component.name] = component

    def add_net(self, net: Net) -> None:
        if net.name in self.nets:
            raise RTLError(f"duplicate net {net.name!r}")
        self.nets[net.name] = net

    def connect(self, net_name: str, sink: Pin) -> None:
        try:
            self.nets[net_name].sinks.append(sink)
        except KeyError:
            raise RTLError(f"no net named {net_name!r}") from None

    def validate(self) -> None:
        """Every pin must reference an existing component."""
        for net in self.nets.values():
            for pin in [net.driver, *net.sinks]:
                if pin.component not in self.components:
                    raise RTLError(
                        f"net {net.name!r} references unknown component "
                        f"{pin.component!r}"
                    )

    def count(self, kind: str) -> int:
        """Number of components of ``kind``."""
        return sum(1 for c in self.components.values() if c.kind == kind)


def _sanitize(name: str) -> str:
    return (
        name.replace(":", "_")
        .replace("#", "k")
        .replace("-", "m")
        .replace(".", "_")
    )


def _alu_name(key: Tuple[str, int]) -> str:
    return _sanitize(f"alu_{key[0]}_{key[1]}")


def build_netlist(datapath: Datapath) -> Netlist:
    """Materialise the structural netlist of ``datapath``."""
    netlist = Netlist(name=datapath.schedule.dfg.name)
    dfg = datapath.schedule.dfg

    for input_name in dfg.inputs:
        netlist.add_component(
            NetlistComponent(name=f"in_{_sanitize(input_name)}", kind="input")
        )
    for key, instance in sorted(datapath.instances.items()):
        netlist.add_component(
            NetlistComponent(
                name=_alu_name(key),
                kind="alu",
                params={
                    "cell": instance.cell.name,
                    "kinds": sorted(instance.cell.kinds),
                    "ops": list(instance.ops),
                },
            )
        )
    for register in range(datapath.registers.count):
        netlist.add_component(
            NetlistComponent(
                name=f"r{register}",
                kind="reg",
                params={"values": list(datapath.registers.values_in(register))},
            )
        )

    # Signal nets: driver is the producing resource.
    def signal_net_name(signal: str) -> str:
        return f"n_{_sanitize(signal)}"

    def ensure_signal_net(signal: str) -> str:
        net_name = signal_net_name(signal)
        if net_name in netlist.nets:
            return net_name
        if signal.startswith("in:"):
            driver = Pin(f"in_{_sanitize(signal[3:])}", "q")
        elif signal.startswith("#"):
            const_name = f"const_{_sanitize(signal[1:])}"
            if const_name not in netlist.components:
                netlist.add_component(
                    NetlistComponent(
                        name=const_name,
                        kind="const",
                        params={"value": int(signal[1:])},
                    )
                )
            driver = Pin(const_name, "q")
        else:
            producer = signal[3:]
            life = datapath.lifetimes.get(signal)
            if life is not None and life.needs_register:
                register = datapath.registers.assignment[signal]
                driver = Pin(f"r{register}", "q")
            else:
                driver = Pin(_alu_name(datapath.binding[producer]), "out")
        netlist.add_net(Net(name=net_name, driver=driver))
        return net_name

    # Register data inputs: producing ALU output -> register.d
    for signal, register in datapath.registers.assignment.items():
        if not signal.startswith("op:"):
            continue  # input-holding registers load from their port
        producer = signal[3:]
        raw = f"raw_{_sanitize(signal)}"
        netlist.add_net(
            Net(
                name=raw,
                driver=Pin(_alu_name(datapath.binding[producer]), "out"),
                sinks=[Pin(f"r{register}", "d")],
            )
        )
    for signal, register in datapath.registers.assignment.items():
        if signal.startswith("in:"):
            netlist.add_net(
                Net(
                    name=f"raw_{_sanitize(signal)}",
                    driver=Pin(f"in_{_sanitize(signal[3:])}", "q"),
                    sinks=[Pin(f"r{register}", "d")],
                )
            )

    # ALU input ports: direct or through a mux component.
    for key, instance in sorted(datapath.instances.items()):
        alu = _alu_name(key)
        for port_index, signals in ((1, instance.mux.l1), (2, instance.mux.l2)):
            if not signals:
                continue
            if len(signals) == 1:
                net_name = ensure_signal_net(signals[0])
                netlist.connect(net_name, Pin(alu, f"in{port_index}"))
                continue
            mux_name = f"mux_{alu}_p{port_index}"
            netlist.add_component(
                NetlistComponent(
                    name=mux_name,
                    kind="mux",
                    params={"inputs": list(signals)},
                )
            )
            for data_index, signal in enumerate(signals):
                net_name = ensure_signal_net(signal)
                netlist.connect(net_name, Pin(mux_name, f"d{data_index}"))
            netlist.add_net(
                Net(
                    name=f"n_{mux_name}",
                    driver=Pin(mux_name, "q"),
                    sinks=[Pin(alu, f"in{port_index}")],
                )
            )

    # Primary outputs.
    for out_name, port in dfg.outputs.items():
        component = f"out_{_sanitize(out_name)}"
        netlist.add_component(NetlistComponent(name=component, kind="output"))
        net_name = ensure_signal_net(port.signal_name())
        netlist.connect(net_name, Pin(component, "d"))

    netlist.validate()
    return netlist
