"""Structural Verilog emission for an allocated datapath + controller.

Produces a single synthesisable-style module: datapath registers, input
multiplexers, ALU function cases and a one-state-per-step FSM.  The
emitter is deliberately dependency-free text generation; it exists so a
downstream user can eyeball or lint the RTL the flow implies, and so
tests can check structural invariants (one always-block per register,
one case arm per state, …).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.allocation.datapath import Datapath
from repro.rtl.controller import build_controller
from repro.rtl.netlist import _sanitize  # shared name mangling

_VERILOG_OPS: Dict[str, str] = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "div": "/",
    "and": "&",
    "or": "|",
    "xor": "^",
    "shl": "<<",
    "shr": ">>",
    "eq": "==",
    "lt": "<",
    "gt": ">",
}

_UNARY_OPS: Dict[str, str] = {"not": "~", "neg": "-", "move": ""}


def _signal_wire(signal: str) -> str:
    if signal.startswith("in:"):
        return _sanitize(signal[3:])
    if signal.startswith("#"):
        value = int(signal[1:])
        return f"16'd{value}" if value >= 0 else f"-16'd{-value}"
    return f"w_{_sanitize(signal[3:])}"


def emit_verilog(
    datapath: Datapath,
    module_name: str = "datapath",
    width: int = 16,
) -> str:
    """Emit the design as structural Verilog text."""
    schedule = datapath.schedule
    dfg = schedule.dfg
    controller = build_controller(datapath)

    lines: List[str] = []
    inputs = [_sanitize(name) for name in dfg.inputs]
    outputs = [_sanitize(name) for name in dfg.outputs]
    ports = ["clk", "rst"] + inputs + [f"out_{o}" for o in outputs]
    lines.append(f"module {module_name} (")
    lines.append("    input  wire clk,")
    lines.append("    input  wire rst,")
    for name in inputs:
        lines.append(f"    input  wire signed [{width - 1}:0] {name},")
    for index, name in enumerate(outputs):
        comma = "," if index < len(outputs) - 1 else ""
        lines.append(f"    output wire signed [{width - 1}:0] out_{name}{comma}")
    lines.append(");")
    lines.append("")

    n_states = max(controller.n_states, 1)
    state_bits = max(1, (n_states - 1).bit_length())
    lines.append(f"    // FSM: one state per control step (1..{n_states})")
    lines.append(f"    reg [{state_bits - 1}:0] state;")
    lines.append("    always @(posedge clk) begin")
    lines.append("        if (rst) state <= 0;")
    lines.append(
        f"        else state <= (state == {n_states - 1}) ? 0 : state + 1;"
    )
    lines.append("    end")
    lines.append("")

    lines.append("    // Left-edge-allocated registers")
    for register in range(datapath.registers.count):
        lines.append(f"    reg signed [{width - 1}:0] r{register};")
    lines.append("")

    lines.append("    // Operation result wires (one per DFG value)")
    for name in dfg.node_names():
        lines.append(f"    wire signed [{width - 1}:0] w_{_sanitize(name)};")
    lines.append("")

    lines.append("    // ALU instances (function selected per schedule)")
    for name in dfg.node_names():
        node = dfg.node(name)
        instance = datapath.instance_of(name)
        operand_wires = []
        for position, port in enumerate(node.operands):
            signal = port.signal_name()
            source = _read_expression(datapath, name, signal)
            operand_wires.append(source)
        expression = _operation_expression(node.kind, operand_wires)
        lines.append(
            f"    assign w_{_sanitize(name)} = {expression}; "
            f"// {node.kind} on {instance.label()} @cs{schedule.start(name)}"
        )
    lines.append("")

    lines.append("    // Register file updates (load enables per state)")
    writes: Dict[int, List[Tuple[int, str]]] = {}
    for signal, register in datapath.registers.assignment.items():
        life = datapath.lifetimes[signal]
        writes.setdefault(register, []).append((life.birth, signal))
    for register in range(datapath.registers.count):
        lines.append("    always @(posedge clk) begin")
        for birth, signal in sorted(writes.get(register, [])):
            if signal.startswith("in:"):
                source = _sanitize(signal[3:])
                condition = "state == 0"
            else:
                source = f"w_{_sanitize(signal[3:])}"
                condition = f"state == {birth - 1}"
            lines.append(
                f"        if ({condition}) r{register} <= {source};"
            )
        lines.append("    end")
    lines.append("")

    lines.append("    // Primary outputs")
    for out_name, port in dfg.outputs.items():
        signal = port.signal_name()
        lines.append(
            f"    assign out_{_sanitize(out_name)} = "
            f"{_read_expression(datapath, None, signal, at_output=True)};"
        )
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)


def _read_expression(
    datapath: Datapath,
    consumer: str,
    signal: str,
    at_output: bool = False,
) -> str:
    """Where a consumer reads ``signal`` from: register or direct wire."""
    if signal.startswith("in:") or signal.startswith("#"):
        registered = datapath.registers.assignment.get(signal)
        if registered is not None and at_output:
            return f"r{registered}"
        return _signal_wire(signal)
    life = datapath.lifetimes.get(signal)
    if life is None or not life.needs_register:
        return _signal_wire(signal)
    if consumer is not None:
        consumer_start = datapath.schedule.start(consumer)
        if consumer_start == life.birth:
            return _signal_wire(signal)  # chained: combinational bypass
    register = datapath.registers.assignment[signal]
    return f"r{register}"


def _operation_expression(kind: str, operands: List[str]) -> str:
    if kind in _UNARY_OPS:
        return f"{_UNARY_OPS[kind]}{operands[0]}"
    if kind in _VERILOG_OPS:
        op = _VERILOG_OPS[kind]
        if kind in ("eq", "lt", "gt"):
            return f"{{15'b0, ({operands[0]} {op} {operands[1]})}}"
        return f"{operands[0]} {op} {operands[1]}"
    if kind == "min":
        return f"(({operands[0]} < {operands[1]}) ? {operands[0]} : {operands[1]})"
    if kind == "max":
        return f"(({operands[0]} > {operands[1]}) ? {operands[0]} : {operands[1]})"
    return f"/* {kind} */ {operands[0]}"
