"""Fully structural Verilog emission.

Unlike :mod:`repro.rtl.verilog` (one combinational expression per DFG
operation — convenient for reading the schedule), this emitter mirrors
the *hardware* MFSA allocated:

* one shared arithmetic block per **ALU instance**, its function chosen
  per FSM state from the controller's ``alu_functions`` table;
* one real **multiplexer** per ALU input port with ≥ 2 sources, its
  select driven per state from ``mux_selects``;
* the **register file** with load enables from ``register_loads``;
* chained values bypass the register file combinationally in their birth
  state (the §5.4 chaining path).

The two emitters describe the same design; the structural one is what a
downstream engineer would hand to synthesis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.allocation.datapath import Datapath
from repro.rtl.controller import build_controller
from repro.rtl.netlist import _sanitize

_FUNCTION_EXPR: Dict[str, str] = {
    "add": "{a} + {b}",
    "sub": "{a} - {b}",
    "mul": "{a} * {b}",
    "div": "{a} / {b}",
    "and": "{a} & {b}",
    "or": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "shl": "{a} << {b}",
    "shr": "{a} >> {b}",
    "eq": "{{15'b0, ({a} == {b})}}",
    "lt": "{{15'b0, ({a} < {b})}}",
    "gt": "{{15'b0, ({a} > {b})}}",
    "neg": "-{a}",
    "not": "~{a}",
    "move": "{a}",
    "min": "(({a} < {b}) ? {a} : {b})",
    "max": "(({a} > {b}) ? {a} : {b})",
}


def _alu_wire(key: Tuple[str, int]) -> str:
    return _sanitize(f"alu_{key[0]}_{key[1]}")


def emit_structural_verilog(
    datapath: Datapath,
    module_name: str = "datapath_rtl",
    width: int = 16,
) -> str:
    """Emit the allocated hardware as structural Verilog."""
    schedule = datapath.schedule
    dfg = schedule.dfg
    controller = build_controller(datapath)
    n_states = max(controller.n_states, 1)
    state_bits = max(1, (n_states - 1).bit_length())

    lines: List[str] = []
    inputs = [_sanitize(name) for name in dfg.inputs]
    outputs = [_sanitize(name) for name in dfg.outputs]
    lines.append(f"module {module_name} (")
    lines.append("    input  wire clk,")
    lines.append("    input  wire rst,")
    for name in inputs:
        lines.append(f"    input  wire signed [{width - 1}:0] {name},")
    for index, name in enumerate(outputs):
        comma = "," if index < len(outputs) - 1 else ""
        lines.append(
            f"    output wire signed [{width - 1}:0] out_{name}{comma}"
        )
    lines.append(");")
    lines.append("")
    lines.append(f"    reg [{state_bits - 1}:0] state;")
    lines.append("    always @(posedge clk) begin")
    lines.append("        if (rst) state <= 0;")
    lines.append(
        f"        else state <= (state == {n_states - 1}) ? 0 : state + 1;"
    )
    lines.append("    end")
    lines.append("")

    for register in range(datapath.registers.count):
        lines.append(f"    reg signed [{width - 1}:0] r{register};")
    lines.append("")

    # ------------------------------------------------------------------
    # signal sources
    # ------------------------------------------------------------------
    def source_expression(signal: str, state_expr: Optional[str]) -> str:
        """Where ``signal`` is read from (register, port, const or ALU out).

        ``state_expr`` non-None marks a chained read in the producer's
        birth state: the register is bypassed combinationally then.
        """
        if signal.startswith("in:"):
            register = datapath.registers.assignment.get(signal)
            port_name = _sanitize(signal[3:])
            if register is None:
                return port_name
            # The input register loads at the end of state 0; step-1
            # consumers bypass it combinationally.
            return f"((state == 0) ? {port_name} : r{register})"
        if signal.startswith("#"):
            value = int(signal[1:])
            return f"16'sd{value}" if value >= 0 else f"-16'sd{-value}"
        producer = signal[3:]
        life = datapath.lifetimes.get(signal)
        alu_out = f"{_alu_wire(datapath.binding[producer])}_out"
        if life is None or not life.needs_register:
            return alu_out
        register = datapath.registers.assignment[signal]
        if state_expr is not None:
            return f"(({state_expr}) ? {alu_out} : r{register})"
        return f"r{register}"

    # ------------------------------------------------------------------
    # multiplexers and ALU port wiring
    # ------------------------------------------------------------------
    lines.append("    // input multiplexers (selects decoded from state)")
    for key, instance in sorted(datapath.instances.items()):
        alu = _alu_wire(key)
        for port, signals in ((1, instance.mux.l1), (2, instance.mux.l2)):
            wire = f"{alu}_in{port}"
            if not signals:
                continue
            lines.append(f"    wire signed [{width - 1}:0] {wire};")
            if len(signals) == 1:
                expr = _sourced(
                    datapath, key, port, signals[0], source_expression
                )
                lines.append(f"    assign {wire} = {expr};")
                continue
            # select value per state from the controller
            selects = {
                state.step - 1: state.mux_selects.get((key[0], key[1], port))
                for state in controller.states
            }
            expr = _sourced(
                datapath, key, port, signals[-1], source_expression
            )
            for data_index in range(len(signals) - 2, -1, -1):
                active_states = sorted(
                    step
                    for step, select in selects.items()
                    if select == data_index
                )
                candidate = _sourced(
                    datapath, key, port, signals[data_index], source_expression
                )
                if not active_states:
                    continue
                condition = " || ".join(
                    f"state == {step}" for step in active_states
                )
                expr = f"({condition}) ? {candidate} :\n                 {expr}"
            lines.append(f"    assign {wire} = {expr};")
    lines.append("")

    # ------------------------------------------------------------------
    # shared ALUs with per-state function select
    # ------------------------------------------------------------------
    lines.append("    // shared ALU instances (function decoded from state)")
    for key, instance in sorted(datapath.instances.items()):
        alu = _alu_wire(key)
        lines.append(
            f"    // {instance.label()}: ops {', '.join(instance.ops)}"
        )
        lines.append(f"    wire signed [{width - 1}:0] {alu}_out;")
        in1 = f"{alu}_in1" if instance.mux.l1 else f"16'sd0"
        in2 = f"{alu}_in2" if instance.mux.l2 else f"16'sd0"
        functions: Dict[str, List[int]] = {}
        for state in controller.states:
            kind = state.alu_functions.get(key)
            if kind is not None:
                functions.setdefault(kind, []).append(state.step - 1)
        kinds = sorted(functions)
        expr = _FUNCTION_EXPR[kinds[-1]].format(a=in1, b=in2)
        for kind in kinds[-2::-1]:
            condition = " || ".join(
                f"state == {step}" for step in sorted(functions[kind])
            )
            candidate = _FUNCTION_EXPR[kind].format(a=in1, b=in2)
            expr = f"({condition}) ? {candidate} :\n                 {expr}"
        lines.append(f"    assign {alu}_out = {expr};")
    lines.append("")

    # ------------------------------------------------------------------
    # register file with load enables
    # ------------------------------------------------------------------
    lines.append("    // register file (left-edge allocation)")
    writes: Dict[int, List[Tuple[int, str]]] = {}
    for signal, register in datapath.registers.assignment.items():
        life = datapath.lifetimes[signal]
        writes.setdefault(register, []).append((life.birth, signal))
    for register in range(datapath.registers.count):
        lines.append("    always @(posedge clk) begin")
        for birth, signal in sorted(writes.get(register, [])):
            if signal.startswith("in:"):
                lines.append(
                    f"        if (state == 0) "
                    f"r{register} <= {_sanitize(signal[3:])};"
                )
            else:
                producer = signal[3:]
                alu_out = f"{_alu_wire(datapath.binding[producer])}_out"
                lines.append(
                    f"        if (state == {birth - 1}) "
                    f"r{register} <= {alu_out};"
                )
        lines.append("    end")
    lines.append("")

    lines.append("    // primary outputs")
    for out_name, port in dfg.outputs.items():
        expr = source_expression(port.signal_name(), None)
        lines.append(f"    assign out_{_sanitize(out_name)} = {expr};")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)


def _sourced(datapath, key, port, signal, source_expression) -> str:
    """Source expression for one mux data input, with chaining bypass.

    If any operation on this instance reads ``signal`` through this port
    in the producer's birth state (a chained transfer), the register is
    bypassed in exactly those states.
    """
    life = datapath.lifetimes.get(signal)
    if life is None or not life.needs_register or not signal.startswith("op:"):
        return source_expression(signal, None)
    schedule = datapath.schedule
    dfg = schedule.dfg
    instance = datapath.instances[key]
    chained_states = []
    for op in instance.ops:
        node = dfg.node(op)
        signals = node.operand_names()
        for position, operand_signal in enumerate(signals):
            if operand_signal != signal:
                continue
            actual_port = (
                1
                if len(signals) == 1
                else instance.mux.port_of(op, textual_left=(position == 0))
            )
            if actual_port != port:
                continue
            if schedule.start(op) == life.birth:
                chained_states.append(schedule.start(op) - 1)
    if not chained_states:
        return source_expression(signal, None)
    condition = " || ".join(
        f"state == {step}" for step in sorted(set(chained_states))
    )
    return source_expression(signal, condition)
