"""Self-checking Verilog testbench generation.

Given a datapath and a set of stimulus vectors, simulates each vector
with the reference-checked executor and emits a testbench that

* drives the design's ports,
* pulses ``rst``, runs the FSM for one full iteration (``cs`` cycles),
* compares every primary output against the simulated expectation and
  reports PASS/FAIL.

Together with :func:`repro.rtl.structural.emit_structural_verilog` this
gives a complete, externally verifiable RTL drop: any event-driven
Verilog simulator can replay the library's own cycle-accurate results.

Caveat: the reference executor computes on unbounded Python integers
while the emitted hardware wraps at ``width`` bits; expectations are
two's-complement-wrapped, but choose stimulus that keeps *intermediate*
values inside the signed range if comparisons feed the outputs (the
standard fixed-point assumption of the era's HLS benchmarks).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.allocation.datapath import Datapath
from repro.rtl.netlist import _sanitize
from repro.sim.executor import execute_datapath


def emit_testbench(
    datapath: Datapath,
    vectors: Sequence[Mapping[str, int]],
    module_name: str = "datapath_rtl",
    testbench_name: str = "tb",
    width: int = 16,
) -> str:
    """Emit a self-checking testbench for ``module_name``.

    Expected outputs come from :func:`execute_datapath` (which is itself
    verified against the reference evaluator in the test suite).
    """
    schedule = datapath.schedule
    dfg = schedule.dfg
    inputs = [_sanitize(name) for name in dfg.inputs]
    outputs = [_sanitize(name) for name in dfg.outputs]

    expected: List[Dict[str, int]] = []
    for vector in vectors:
        trace = execute_datapath(datapath, vector)
        expected.append(dict(trace.outputs))

    lines: List[str] = []
    lines.append("`timescale 1ns/1ps")
    lines.append(f"module {testbench_name};")
    lines.append("    reg clk = 0;")
    lines.append("    reg rst = 1;")
    for name in inputs:
        lines.append(f"    reg  signed [{width - 1}:0] {name};")
    for name in outputs:
        lines.append(f"    wire signed [{width - 1}:0] out_{name};")
    lines.append("    integer errors = 0;")
    lines.append("")
    ports = ["        .clk(clk)", "        .rst(rst)"]
    ports += [f"        .{name}({name})" for name in inputs]
    ports += [f"        .out_{name}(out_{name})" for name in outputs]
    lines.append(f"    {module_name} dut (")
    lines.append(",\n".join(ports))
    lines.append("    );")
    lines.append("")
    lines.append("    always #5 clk = ~clk;")
    lines.append("")
    lines.append("    task check;")
    lines.append(f"        input signed [{width - 1}:0] got;")
    lines.append(f"        input signed [{width - 1}:0] want;")
    lines.append("        input [127:0] label;")
    lines.append("        begin")
    lines.append("            if (got !== want) begin")
    lines.append(
        '                $display("FAIL %0s: got %0d want %0d", '
        "label, got, want);"
    )
    lines.append("                errors = errors + 1;")
    lines.append("            end")
    lines.append("        end")
    lines.append("    endtask")
    lines.append("")
    lines.append("    initial begin")
    for index, (vector, expectation) in enumerate(zip(vectors, expected)):
        lines.append(f"        // vector {index}")
        for name in dfg.inputs:
            value = vector[name]
            literal = (
                f"{width}'sd{value}" if value >= 0 else f"-{width}'sd{-value}"
            )
            lines.append(f"        {_sanitize(name)} = {literal};")
        lines.append("        rst = 1; @(posedge clk); #1 rst = 0;")
        lines.append(
            f"        repeat ({schedule.cs}) @(posedge clk);"
        )
        lines.append("        #1;")
        for out_name in dfg.outputs:
            value = expectation[out_name]
            lines.append(
                f'        check(out_{_sanitize(out_name)}, '
                f'{_signed_literal(value, width)}, "{out_name}");'
            )
    lines.append('        if (errors == 0) $display("PASS: all vectors");')
    lines.append('        else $display("FAIL: %0d mismatches", errors);')
    lines.append("        $finish;")
    lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines)


def _signed_literal(value: int, width: int) -> str:
    """Two's-complement-wrapped signed literal of ``value``."""
    mask = (1 << width) - 1
    wrapped = value & mask
    if wrapped >= 1 << (width - 1):
        return f"-{width}'sd{(1 << width) - wrapped}"
    return f"{width}'sd{wrapped}"
