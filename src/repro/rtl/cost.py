"""Area roll-up including an optional control-path estimate.

Table 2 costs the datapath only; :func:`total_area` optionally adds a
controller estimate (state register + one decoded control word per state)
so the design-space-exploration example can compare complete designs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.allocation.datapath import Datapath
from repro.rtl.controller import build_controller

#: Synthetic per-bit costs (µm²), consistent with the NCR-like library.
FLIP_FLOP_AREA = 95.0
CONTROL_WORD_BIT_AREA = 60.0


@dataclass(frozen=True)
class AreaReport:
    """Datapath + controller area breakdown."""

    alu: float
    registers: float
    mux: float
    controller: float

    @property
    def datapath(self) -> float:
        return self.alu + self.registers + self.mux

    @property
    def total(self) -> float:
        return self.datapath + self.controller


def controller_area(datapath: Datapath) -> float:
    """Estimate of the FSM area: state register + decoded control words."""
    controller = build_controller(datapath)
    n_states = max(controller.n_states, 1)
    state_bits = max(1, (n_states - 1).bit_length())
    control_bits = controller.control_bits()
    return (
        state_bits * FLIP_FLOP_AREA
        + n_states * control_bits * CONTROL_WORD_BIT_AREA
    )


def total_area(datapath: Datapath, include_controller: bool = False) -> AreaReport:
    """Full area report of a design."""
    breakdown = datapath.cost_breakdown()
    return AreaReport(
        alu=breakdown.alu,
        registers=breakdown.registers,
        mux=breakdown.mux,
        controller=controller_area(datapath) if include_controller else 0.0,
    )
