"""Design-space exploration driver.

Automates the latency/area sweep every HLS methodology paper runs by
hand: schedule-and-allocate a behaviour across a range of time budgets,
collect the cost metrics, extract the Pareto front and pick a knee.

    points = design_space(dfg, timing, library)
    front = pareto_front(points)
    pick = knee_point(front)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import InfeasibleScheduleError
from repro.dfg.analysis import TimingModel, critical_path_length
from repro.dfg.graph import DFG
from repro.library.cells import CellLibrary
from repro.core.liapunov import LiapunovWeights
from repro.core.mfsa import MFSAResult, MFSAScheduler
from repro.perf import PerfCounters
from repro.resilience.checkpoint import resume_map
from repro.sweep import (
    SweepExecutor,
    merge_worker_perf,
    merge_worker_traces,
    worker_context,
)
from repro.trace.recorder import TraceRecorder


@dataclass(frozen=True)
class DesignPoint:
    """One explored design: a time budget and its measured costs."""

    cs: int
    total_area: float
    alu_area: float
    register_count: int
    mux_inputs: int
    alu_labels: tuple

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (latency, area)."""
        return (
            self.cs <= other.cs
            and self.total_area <= other.total_area
            and (self.cs < other.cs or self.total_area < other.total_area)
        )


def default_budget_ladder(dfg: DFG, timing: TimingModel) -> List[int]:
    """The default sweep ladder: critical path up to the serial length."""
    base = critical_path_length(dfg, timing)
    serial = sum(timing.latency(node.kind) for node in dfg)
    ladder = sorted(
        {
            base,
            base + 1,
            base + 2,
            base + 4,
            base + 8,
            (base + serial) // 2,
            serial,
        }
    )
    return [cs for cs in ladder if cs >= base]


def _design_point_worker(payload) -> Tuple[
    int, Optional[dict], Optional[MFSAResult], Optional[dict], Optional[list]
]:
    """Synthesise one budget (module-level so process pools can pickle it).

    The design, timing model and library ride in the executor's shared
    worker context (installed once per worker process), so the per-item
    payload is just the budget and the small run parameters.

    Returns ``(cs, point_fields, result | None, perf_snapshot | None,
    trace_snapshot | None)``; ``point_fields`` is ``None`` for infeasible
    budgets.  The trace snapshot is a header-less event list (see
    :meth:`~repro.trace.recorder.TraceRecorder.snapshot`) the caller
    merges back under a ``cs=<budget>`` source tag.
    """
    dfg, timing, library = worker_context()
    cs, style, weights, keep_results, want_perf, want_trace = payload
    perf = PerfCounters() if want_perf else None
    trace = TraceRecorder() if want_trace else None
    try:
        result = MFSAScheduler(
            dfg,
            timing,
            library,
            cs=cs,
            style=style,
            weights=weights,
            perf=perf,
            trace=trace,
        ).run()
    except InfeasibleScheduleError:
        return (
            cs,
            None,
            None,
            perf.as_dict() if perf else None,
            trace.snapshot() if trace else None,
        )
    cost = result.cost
    fields = dict(
        cs=cs,
        total_area=cost.total,
        alu_area=cost.alu,
        register_count=result.datapath.register_count(),
        mux_inputs=result.datapath.mux_inputs(),
        alu_labels=tuple(sorted(result.alu_labels())),
    )
    return (
        cs,
        fields,
        result if keep_results else None,
        perf.as_dict() if perf else None,
        trace.snapshot() if trace else None,
    )


def design_space(
    dfg: DFG,
    timing: TimingModel,
    library: CellLibrary,
    budgets: Optional[Sequence[int]] = None,
    style: int = 1,
    weights: LiapunovWeights = LiapunovWeights(),
    keep_results: bool = False,
    backend: str = "serial",
    workers: Optional[int] = None,
    perf: Optional[PerfCounters] = None,
    trace: Optional[TraceRecorder] = None,
    checkpoint: Optional[str] = None,
) -> List[DesignPoint]:
    """Synthesise the behaviour across a range of time budgets.

    ``budgets`` defaults to a geometric-ish ladder from the critical path
    to roughly twice the serial length.  Budgets where MFSA cannot place
    the design (possible under exotic libraries) are skipped.

    With ``keep_results`` each point's full :class:`MFSAResult` is
    attached via the ``results`` attribute of the returned list (a plain
    list subclass), for callers that want the actual datapaths.

    ``backend`` selects the sweep executor (``"serial"`` — the default,
    ``"process"`` — a :mod:`concurrent.futures` pool over budgets,
    ``"auto"`` — processes when the machine has them).  Results are
    identical in value and order on every backend; ``perf`` (optional
    :class:`~repro.perf.PerfCounters`) aggregates scheduler counters
    across all budgets, merged from workers when the pool runs.

    ``trace`` (optional :class:`~repro.trace.recorder.TraceRecorder`)
    collects the full decision stream of every budget into one recorder:
    each worker records its own run and the per-budget streams are merged
    back in budget order under a ``cs=<budget>`` source tag, so the
    combined JSONL splits back into per-budget runs on replay — identical
    whether the sweep ran serial or over the pool.

    ``checkpoint`` names a :class:`~repro.resilience.checkpoint.\
SweepCheckpoint` file: each completed budget is durably recorded as it
    lands, and a re-run with the same file (and the same design, library,
    style, weights and clock — anything else discards the stale file)
    skips the budgets already done.  Restored budgets re-run nothing, so
    they contribute no ``perf``/``trace`` events and no ``results``
    entries — resume is for recovering the *points* of an interrupted
    sweep, not its instrumentation.
    """
    if budgets is None:
        budgets = default_budget_ladder(dfg, timing)

    class _PointList(list):
        results: dict

    payloads = [
        (
            cs,
            style,
            weights,
            keep_results,
            perf is not None,
            trace is not None,
        )
        for cs in budgets
    ]
    ckpt = None
    if checkpoint is not None:
        from repro.dfg.fingerprint import dfg_fingerprint, library_fingerprint
        from repro.resilience.checkpoint import SweepCheckpoint

        ckpt = SweepCheckpoint(
            checkpoint,
            meta={
                "kind": "design_space",
                "design": dfg_fingerprint(dfg),
                "library": library_fingerprint(library),
                "style": style,
                "weights": repr(weights),
                "clock_ns": timing.clock_period_ns,
            },
        )

    def _encode(outcome):
        cs, fields, _result, _perf_snap, _trace_snap = outcome
        return {"cs": cs, "fields": fields}

    def _decode(value):
        fields = value["fields"]
        if fields is not None:
            fields = dict(fields, alu_labels=tuple(fields["alu_labels"]))
        return (value["cs"], fields, None, None, None)

    executor = SweepExecutor(
        backend=backend,
        workers=workers,
        perf=perf,
        context=(dfg, timing, library),
    )
    try:
        outcomes = resume_map(
            executor,
            _design_point_worker,
            payloads,
            ckpt,
            key_fn=lambda payload: f"cs={payload[0]}",
            encode=_encode,
            decode=_decode,
        )
    finally:
        if ckpt is not None:
            ckpt.close()
    merge_worker_perf(perf, (snap for _cs, _f, _r, snap, _t in outcomes))
    merge_worker_traces(
        trace, ((f"cs={cs}", snap) for cs, _f, _r, _p, snap in outcomes)
    )

    points = _PointList()
    points.results = {}
    for cs, fields, result, _snapshot, _trace_snapshot in outcomes:
        if fields is None:
            continue
        points.append(DesignPoint(**fields))
        if keep_results and result is not None:
            points.results[cs] = result
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by latency."""
    front = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    # deduplicate identical (cs, area) pairs deterministically
    seen = set()
    unique = []
    for point in sorted(front, key=lambda p: (p.cs, p.total_area)):
        key = (point.cs, point.total_area)
        if key not in seen:
            seen.add(key)
            unique.append(point)
    return unique


def knee_point(front: Sequence[DesignPoint]) -> Optional[DesignPoint]:
    """The front's knee: maximum distance from the endpoints' chord.

    Returns the single point balancing latency against area; ``None`` for
    an empty front, the sole point for singleton fronts.
    """
    if not front:
        return None
    ordered = sorted(front, key=lambda p: p.cs)
    if len(ordered) <= 2:
        return ordered[0]
    first, last = ordered[0], ordered[-1]
    span_cs = last.cs - first.cs or 1
    span_area = first.total_area - last.total_area or 1.0

    def distance(point: DesignPoint) -> float:
        # normalised distance from the chord between the endpoints
        u = (point.cs - first.cs) / span_cs
        v = (first.total_area - point.total_area) / span_area
        return v - u

    return max(ordered, key=distance)


def render_design_space(points: Sequence[DesignPoint]) -> str:
    """Text table of a sweep."""
    lines = [
        f"{'T':>5} {'area':>10} {'ALU area':>10} {'REG':>5} {'MUXin':>7}  ALUs",
        "-" * 70,
    ]
    front = set(id(p) for p in pareto_front(points))
    for point in sorted(points, key=lambda p: p.cs):
        marker = "*" if id(point) in front else " "
        lines.append(
            f"{point.cs:>5} {point.total_area:>10.0f} {point.alu_area:>10.0f} "
            f"{point.register_count:>5} {point.mux_inputs:>7} {marker} "
            f"{'; '.join(point.alu_labels)}"
        )
    lines.append("(* = Pareto-optimal)")
    return "\n".join(lines)
